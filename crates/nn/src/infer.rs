//! The zero-allocation batched inference engine.
//!
//! Every scoring path in the workspace — TargAD's Eq. 9 target scores, the
//! per-epoch probe scoring behind the convergence figures, the Eq. 2
//! reconstruction-error ranking, and all MLP-backed baseline `score()`
//! implementations — is a *frozen* forward pass: matrices of weights that no
//! longer change, applied to a batch of rows. [`ScoreEngine`] runs that pass
//! with three properties the reference `Mlp::eval_rt` pipeline lacks:
//!
//! 1. **Fused epilogues** — each dense layer is one call to
//!    `targad_linalg::matmul_bias_act_rows_into`, which applies the bias add
//!    and elementwise activation in the GEMM's write-back instead of as two
//!    further full-matrix passes.
//! 2. **Pooled ping-pong scratch** — layer outputs alternate between two
//!    per-worker scratch buffers that are kept at capacity across batches
//!    (the same discipline as the pooled `Tape`), so steady-state scoring
//!    performs zero heap allocations.
//! 3. **Deterministic row-block streaming** — input rows are partitioned
//!    into fixed [`INFER_BLOCK_ROWS`]-row blocks that never depend on the
//!    worker count, and each block is computed in full by exactly one
//!    worker. Every output score depends only on its own input row, so the
//!    result is bit-identical to the serial reference at any
//!    `TARGAD_THREADS`, and memory stays O(block), not O(n).
//!
//! The engine is bit-identical to `Mlp::eval`/`eval_rt` by construction: the
//! fused kernel computes the exact accumulation chains of the unfused
//! matmul + broadcast + activation sequence (see the epilogue notes in
//! `targad-linalg`), and block streaming only re-partitions independent
//! per-row chains. `eval`/`eval_rt` remain in place as the reference
//! implementation the exact-equality tests compare against.

use std::sync::Mutex;

use targad_autograd::VarStore;
use targad_linalg::f32kernel::matmul_bias_act_f32_into;
use targad_linalg::{matmul_bias_act_rows_into, EpiAct, Matrix, PackedF32};
use targad_obs::metrics::{
    SCORE_BATCHES, SCORE_BLOCKS, SCORE_ENGINE_POOL_BYTES, SCORE_F32_BATCHES, SCORE_ROWS,
};
use targad_obs::profile::{span, PHASE_INFER};
use targad_runtime::Runtime;

use crate::layers::Mlp;

/// Rows per streamed block. Fixed — never derived from the worker count —
/// so the block partition (and therefore every accumulation chain grouping)
/// is invariant under `TARGAD_THREADS`. 256 rows keeps a block's widest
/// layer activation within L2 for every architecture in the reproduction
/// while still amortizing the per-block dispatch.
pub const INFER_BLOCK_ROWS: usize = 256;

/// A frozen forward pass: MLPs applied in sequence, each with its own
/// parameter store. A single network is `&[(&mlp, &store)]`; an autoencoder
/// chains `[(&encoder, store), (&decoder, store)]`.
pub type ModelStack<'a> = &'a [(&'a Mlp, &'a VarStore)];

/// Arithmetic precision of an inference pass.
///
/// [`EnginePrecision::F64`] is the bit-exact oracle every reference path
/// uses; [`EnginePrecision::F32`] is the opt-in SIMD serving path whose
/// ranking fidelity (AUC-PR, verdict agreement) is tolerance-tested against
/// the oracle. Training is always f64 — this knob only selects how a
/// *fitted* model is evaluated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EnginePrecision {
    /// Double precision: the bit-exact reference (default).
    #[default]
    F64,
    /// Single precision through the `targad-linalg` f32 micro-kernels.
    F32,
}

impl EnginePrecision {
    /// Stable wire/JSON name: `f64` or `f32`.
    pub fn name(self) -> &'static str {
        match self {
            EnginePrecision::F64 => "f64",
            EnginePrecision::F32 => "f32",
        }
    }

    /// Parses a wire/CLI name, case-insensitively.
    pub fn parse(name: &str) -> Option<EnginePrecision> {
        match name.to_ascii_lowercase().as_str() {
            "f64" | "double" => Some(EnginePrecision::F64),
            "f32" | "single" => Some(EnginePrecision::F32),
            _ => None,
        }
    }
}

/// One dense layer of an [`F32Plan`]: pre-packed f32 weights, cast bias,
/// and the fused epilogue activation.
struct F32Layer {
    weights: PackedF32,
    bias: Vec<f32>,
    act: EpiAct,
    d_out: usize,
}

/// A fitted model cast to the f32 kernel layout *once*: every layer's f64
/// weight matrix becomes a [`PackedF32`] panel set (the micro-kernel's
/// native streaming order) and its bias a contiguous f32 vector.
///
/// Build one per fitted model — at registry insert / hot-swap in
/// `targad-serve`, or lazily on first f32 scoring call — and reuse it for
/// every batch; the cast+pack cost is paid exactly once.
pub struct F32Plan {
    layers: Vec<F32Layer>,
    d_in: usize,
    d_out: usize,
}

impl F32Plan {
    /// Casts and packs the frozen forward pass of `stack`.
    pub fn from_stack(stack: ModelStack<'_>) -> Self {
        assert!(!stack.is_empty(), "F32Plan: empty model stack");
        let d_in = stack[0].0.in_dim();
        let mut layers = Vec::new();
        let mut cur_dim = d_in;
        for &(mlp, store) in stack {
            assert_eq!(mlp.in_dim(), cur_dim, "F32Plan: stack dim chain");
            for (i, layer) in mlp.layers().iter().enumerate() {
                let (wid, bid) = layer.params();
                let weights = PackedF32::from_matrix(store.value(wid));
                let bias: Vec<f32> = store
                    .value(bid)
                    .as_slice()
                    .iter()
                    .map(|&b| b as f32)
                    .collect();
                layers.push(F32Layer {
                    weights,
                    bias,
                    act: mlp.act(i).epi(),
                    d_out: layer.out_dim(),
                });
                cur_dim = layer.out_dim();
            }
        }
        Self {
            layers,
            d_in,
            d_out: cur_dim,
        }
    }

    /// Input dimensionality of the planned pass.
    pub fn d_in(&self) -> usize {
        self.d_in
    }

    /// Output dimensionality of the planned pass.
    pub fn d_out(&self) -> usize {
        self.d_out
    }

    /// Bytes held by the packed weights and cast biases.
    pub fn bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.weights.bytes() + l.bias.capacity() * std::mem::size_of::<f32>())
            .sum()
    }
}

/// Per-worker ping-pong scratch: layer `l` reads one buffer and writes the
/// other. Both are kept at high-water capacity across batches.
#[derive(Default)]
struct Scratch {
    a: Vec<f64>,
    b: Vec<f64>,
}

/// Per-worker f32 scratch: the cast input block plus the ping-pong layer
/// buffers of the reduced-precision path. Kept at high-water capacity
/// across batches, exactly like [`Scratch`].
#[derive(Default)]
struct ScratchF32 {
    x: Vec<f32>,
    a: Vec<f32>,
    b: Vec<f32>,
}

/// The pre-planned, pooled inference pipeline. See the module docs.
///
/// One engine amortizes its scratch across every batch it runs; scoring
/// paths hold one per fitted model (via [`EngineCell`]) so repeated scoring
/// — per-epoch probe traces, suite-table regeneration — stops allocating
/// after the first batch.
#[derive(Default)]
pub struct ScoreEngine {
    /// One scratch pair per worker slot (index = worker id).
    scratch: Vec<Scratch>,
    /// One f32 scratch triple per worker slot, grown only by the
    /// reduced-precision path.
    scratch_f32: Vec<ScratchF32>,
    /// One result buffer per row block (index = block id), shared by both
    /// precisions (finish closures always emit `f64`).
    results: Vec<Vec<f64>>,
}

impl ScoreEngine {
    /// A fresh engine with an empty buffer pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs the frozen forward pass of `stack` over `x` and reduces each
    /// final-layer row to one score with `finish(global_row, row)`, writing
    /// `out[r] = finish(r, final_layer_row_r)`.
    ///
    /// `finish` must be a pure per-row function; scores are then
    /// bit-identical at any worker count.
    pub fn score_into<F>(
        &mut self,
        stack: ModelStack<'_>,
        x: &Matrix,
        rt: &Runtime,
        finish: F,
        out: &mut [f64],
    ) where
        F: Fn(usize, &[f64]) -> f64 + Sync,
    {
        assert_eq!(out.len(), x.rows(), "score_into: out length mismatch");
        self.run_blocks(stack, x, rt, |start, d_last, fin, result| {
            let rb = fin.len() / d_last.max(1);
            result.resize(rb, 0.0);
            for (r, (slot, row)) in result.iter_mut().zip(fin.chunks_exact(d_last)).enumerate() {
                *slot = finish(start + r, row);
            }
        });
        // Ascending-block gather: deterministic and cheap (one copy).
        let nblocks = x.rows().div_ceil(INFER_BLOCK_ROWS);
        for (block, chunk) in self.results[..nblocks]
            .iter()
            .zip(out.chunks_mut(INFER_BLOCK_ROWS))
        {
            chunk.copy_from_slice(block);
        }
    }

    /// [`ScoreEngine::score_into`] into a fresh `Vec` (the allocation is the
    /// caller's result, not engine scratch).
    pub fn score<F>(
        &mut self,
        stack: ModelStack<'_>,
        x: &Matrix,
        rt: &Runtime,
        finish: F,
    ) -> Vec<f64>
    where
        F: Fn(usize, &[f64]) -> f64 + Sync,
    {
        let mut out = vec![0.0; x.rows()];
        self.score_into(stack, x, rt, finish, &mut out);
        out
    }

    /// Like [`ScoreEngine::score_into`], but each row reduces to a *pair*
    /// of values: `out[r] = finish(r, final_layer_row_r)`.
    ///
    /// This is the verdict entry point: a serving response needs both the
    /// scalar score and the (numerically encoded) decision class, and
    /// producing them in one fused pass avoids a second forward. Pairs are
    /// stored interleaved in the same pooled `f64` block buffers the
    /// scalar path uses, so steady-state batches stay allocation-free.
    ///
    /// `finish` must be a pure per-row function; results are then
    /// bit-identical at any worker count.
    pub fn score_pairs_into<F>(
        &mut self,
        stack: ModelStack<'_>,
        x: &Matrix,
        rt: &Runtime,
        finish: F,
        out: &mut [(f64, f64)],
    ) where
        F: Fn(usize, &[f64]) -> (f64, f64) + Sync,
    {
        assert_eq!(out.len(), x.rows(), "score_pairs_into: out length mismatch");
        self.run_blocks(stack, x, rt, |start, d_last, fin, result| {
            let rb = fin.len() / d_last.max(1);
            result.resize(2 * rb, 0.0);
            for (r, row) in fin.chunks_exact(d_last).enumerate() {
                let (a, b) = finish(start + r, row);
                result[2 * r] = a;
                result[2 * r + 1] = b;
            }
        });
        let nblocks = x.rows().div_ceil(INFER_BLOCK_ROWS);
        for (block, chunk) in self.results[..nblocks]
            .iter()
            .zip(out.chunks_mut(INFER_BLOCK_ROWS))
        {
            for (slot, pair) in chunk.iter_mut().zip(block.chunks_exact(2)) {
                *slot = (pair[0], pair[1]);
            }
        }
    }

    /// [`ScoreEngine::score_pairs_into`] into a fresh `Vec`.
    pub fn score_pairs<F>(
        &mut self,
        stack: ModelStack<'_>,
        x: &Matrix,
        rt: &Runtime,
        finish: F,
    ) -> Vec<(f64, f64)>
    where
        F: Fn(usize, &[f64]) -> (f64, f64) + Sync,
    {
        let mut out = vec![(0.0, 0.0); x.rows()];
        self.score_pairs_into(stack, x, rt, finish, &mut out);
        out
    }

    /// Runs the frozen forward pass of `stack` over `x` and writes the
    /// final-layer activations into `out` (shape `x.rows() x d_out`).
    /// The embedding counterpart of [`ScoreEngine::score_into`] for paths
    /// that need the full output matrix (REPEN embeddings, FEAWAD's
    /// representation assembly).
    pub fn forward_into(
        &mut self,
        stack: ModelStack<'_>,
        x: &Matrix,
        rt: &Runtime,
        out: &mut Matrix,
    ) {
        let d_last = stack
            .last()
            .map(|(mlp, _)| mlp.out_dim())
            .expect("forward_into: empty stack");
        assert_eq!(
            out.shape(),
            (x.rows(), d_last),
            "forward_into: out shape mismatch"
        );
        self.run_blocks(stack, x, rt, |_start, _d, fin, result| {
            result.resize(fin.len(), 0.0);
            result.copy_from_slice(fin);
        });
        let nblocks = x.rows().div_ceil(INFER_BLOCK_ROWS);
        for (block, chunk) in self.results[..nblocks]
            .iter()
            .zip(out.as_mut_slice().chunks_mut(INFER_BLOCK_ROWS * d_last))
        {
            chunk.copy_from_slice(block);
        }
    }

    /// The streaming core: partitions `x` into fixed row blocks, runs the
    /// fused layer pipeline per block on the runtime pool (one block per
    /// worker at a time, contiguous block ranges per worker), and hands each
    /// block's final activations to `emit(start_row, d_last, rows, result)`.
    fn run_blocks<E>(&mut self, stack: ModelStack<'_>, x: &Matrix, rt: &Runtime, emit: E)
    where
        E: Fn(usize, usize, &[f64], &mut Vec<f64>) + Sync,
    {
        let _guard = span(&PHASE_INFER);
        let rows = x.rows();
        let d_in = x.cols();
        assert!(!stack.is_empty(), "ScoreEngine: empty model stack");
        assert_eq!(stack[0].0.in_dim(), d_in, "ScoreEngine: input dim mismatch");
        SCORE_BATCHES.inc();
        SCORE_ROWS.add(rows as u64);
        if rows == 0 {
            return;
        }

        let nblocks = rows.div_ceil(INFER_BLOCK_ROWS);
        SCORE_BLOCKS.add(nblocks as u64);
        let workers = rt.threads().min(nblocks).max(1);
        // Grow-only pools: `resize_with` would drop warm buffers on shrink.
        if self.results.len() < nblocks {
            self.results.resize_with(nblocks, Vec::new);
        }
        if self.scratch.len() < workers {
            self.scratch.resize_with(workers, Scratch::default);
        }

        let xs = x.as_slice();
        rt.par_shards(
            &mut self.results[..nblocks],
            &mut self.scratch[..workers],
            |s, result, scr| {
                let start = s * INFER_BLOCK_ROWS;
                let rb = (rows - start).min(INFER_BLOCK_ROWS);
                let mut cur_dim = d_in;
                // `true` when the *next* layer writes into `scr.a`.
                let mut dst_is_a = true;
                let mut first = true;
                for &(mlp, store) in stack {
                    debug_assert_eq!(mlp.in_dim(), cur_dim, "ScoreEngine: stack dim chain");
                    for (i, layer) in mlp.layers().iter().enumerate() {
                        let (wid, bid) = layer.params();
                        let w = store.value(wid);
                        let bias = store.value(bid).as_slice();
                        let act = mlp.act(i).epi();
                        let d_out = layer.out_dim();
                        let (src, dst) = if first {
                            let rows_in = &xs[start * cur_dim..(start + rb) * cur_dim];
                            (rows_in, &mut scr.a)
                        } else if dst_is_a {
                            (&scr.b[..rb * cur_dim], &mut scr.a)
                        } else {
                            (&scr.a[..rb * cur_dim], &mut scr.b)
                        };
                        dst.resize(rb * d_out, 0.0);
                        matmul_bias_act_rows_into(src, cur_dim, w, bias, act, &mut dst[..]);
                        first = false;
                        dst_is_a = !dst_is_a;
                        cur_dim = d_out;
                    }
                }
                let fin = if dst_is_a {
                    &scr.b[..rb * cur_dim]
                } else {
                    &scr.a[..rb * cur_dim]
                };
                emit(start, cur_dim, fin, result);
            },
        );

        SCORE_ENGINE_POOL_BYTES.set(self.pool_bytes() as u64);
    }

    /// [`ScoreEngine::score_into`] on the reduced-precision path: each input
    /// block is cast to f32 once, streamed through `plan`'s pre-packed
    /// layers via the `targad-linalg` f32 micro-kernels, and reduced per row
    /// by `finish(global_row, f32_row) -> f64`.
    ///
    /// Worker-count invariance holds exactly as for the f64 path: the block
    /// partition is fixed, each row's chains are independent, and the f32
    /// kernels are bit-identical across their dispatch paths — so scores
    /// are bit-identical at any `TARGAD_THREADS` *given* the process's
    /// dispatch decision, and across SIMD/scalar hosts too.
    pub fn score_f32_into<F>(
        &mut self,
        plan: &F32Plan,
        x: &Matrix,
        rt: &Runtime,
        finish: F,
        out: &mut [f64],
    ) where
        F: Fn(usize, &[f32]) -> f64 + Sync,
    {
        assert_eq!(out.len(), x.rows(), "score_f32_into: out length mismatch");
        self.run_blocks_f32(plan, x, rt, |start, d_last, fin, result| {
            let rb = fin.len() / d_last.max(1);
            result.resize(rb, 0.0);
            for (r, (slot, row)) in result.iter_mut().zip(fin.chunks_exact(d_last)).enumerate() {
                *slot = finish(start + r, row);
            }
        });
        let nblocks = x.rows().div_ceil(INFER_BLOCK_ROWS);
        for (block, chunk) in self.results[..nblocks]
            .iter()
            .zip(out.chunks_mut(INFER_BLOCK_ROWS))
        {
            chunk.copy_from_slice(block);
        }
    }

    /// [`ScoreEngine::score_f32_into`] into a fresh `Vec`.
    pub fn score_f32<F>(&mut self, plan: &F32Plan, x: &Matrix, rt: &Runtime, finish: F) -> Vec<f64>
    where
        F: Fn(usize, &[f32]) -> f64 + Sync,
    {
        let mut out = vec![0.0; x.rows()];
        self.score_f32_into(plan, x, rt, finish, &mut out);
        out
    }

    /// [`ScoreEngine::score_pairs_into`] on the reduced-precision path —
    /// the f32 verdict entry point for `targad-serve`.
    pub fn score_pairs_f32_into<F>(
        &mut self,
        plan: &F32Plan,
        x: &Matrix,
        rt: &Runtime,
        finish: F,
        out: &mut [(f64, f64)],
    ) where
        F: Fn(usize, &[f32]) -> (f64, f64) + Sync,
    {
        assert_eq!(
            out.len(),
            x.rows(),
            "score_pairs_f32_into: out length mismatch"
        );
        self.run_blocks_f32(plan, x, rt, |start, d_last, fin, result| {
            let rb = fin.len() / d_last.max(1);
            result.resize(2 * rb, 0.0);
            for (r, row) in fin.chunks_exact(d_last).enumerate() {
                let (a, b) = finish(start + r, row);
                result[2 * r] = a;
                result[2 * r + 1] = b;
            }
        });
        let nblocks = x.rows().div_ceil(INFER_BLOCK_ROWS);
        for (block, chunk) in self.results[..nblocks]
            .iter()
            .zip(out.chunks_mut(INFER_BLOCK_ROWS))
        {
            for (slot, pair) in chunk.iter_mut().zip(block.chunks_exact(2)) {
                *slot = (pair[0], pair[1]);
            }
        }
    }

    /// [`ScoreEngine::score_pairs_f32_into`] into a fresh `Vec`.
    pub fn score_pairs_f32<F>(
        &mut self,
        plan: &F32Plan,
        x: &Matrix,
        rt: &Runtime,
        finish: F,
    ) -> Vec<(f64, f64)>
    where
        F: Fn(usize, &[f32]) -> (f64, f64) + Sync,
    {
        let mut out = vec![(0.0, 0.0); x.rows()];
        self.score_pairs_f32_into(plan, x, rt, finish, &mut out);
        out
    }

    /// The f32 twin of [`ScoreEngine::run_blocks`]: the same fixed-block
    /// streaming over the runtime pool, but each worker casts its block to
    /// f32 once and runs the pre-packed fused f32 kernels layer by layer.
    fn run_blocks_f32<E>(&mut self, plan: &F32Plan, x: &Matrix, rt: &Runtime, emit: E)
    where
        E: Fn(usize, usize, &[f32], &mut Vec<f64>) + Sync,
    {
        let _guard = span(&PHASE_INFER);
        let rows = x.rows();
        let d_in = x.cols();
        assert_eq!(plan.d_in(), d_in, "ScoreEngine: f32 plan dim mismatch");
        SCORE_BATCHES.inc();
        SCORE_F32_BATCHES.inc();
        SCORE_ROWS.add(rows as u64);
        if rows == 0 {
            return;
        }

        let nblocks = rows.div_ceil(INFER_BLOCK_ROWS);
        SCORE_BLOCKS.add(nblocks as u64);
        let workers = rt.threads().min(nblocks).max(1);
        if self.results.len() < nblocks {
            self.results.resize_with(nblocks, Vec::new);
        }
        if self.scratch_f32.len() < workers {
            self.scratch_f32.resize_with(workers, ScratchF32::default);
        }

        let xs = x.as_slice();
        rt.par_shards(
            &mut self.results[..nblocks],
            &mut self.scratch_f32[..workers],
            |s, result, scr| {
                let start = s * INFER_BLOCK_ROWS;
                let rb = (rows - start).min(INFER_BLOCK_ROWS);
                // One cast per block: the f64 input rows narrow to f32 here
                // and never again.
                scr.x.resize(rb * d_in, 0.0);
                for (dst, &src) in scr.x.iter_mut().zip(&xs[start * d_in..(start + rb) * d_in]) {
                    *dst = src as f32;
                }
                let mut cur_dim = d_in;
                let mut dst_is_a = true;
                let mut first = true;
                for layer in &plan.layers {
                    let (src, dst) = if first {
                        (&scr.x[..rb * cur_dim], &mut scr.a)
                    } else if dst_is_a {
                        (&scr.b[..rb * cur_dim], &mut scr.a)
                    } else {
                        (&scr.a[..rb * cur_dim], &mut scr.b)
                    };
                    dst.resize(rb * layer.d_out, 0.0);
                    matmul_bias_act_f32_into(
                        src,
                        cur_dim,
                        &layer.weights,
                        &layer.bias,
                        layer.act,
                        &mut dst[..],
                    );
                    first = false;
                    dst_is_a = !dst_is_a;
                    cur_dim = layer.d_out;
                }
                let fin = if dst_is_a {
                    &scr.b[..rb * cur_dim]
                } else {
                    &scr.a[..rb * cur_dim]
                };
                emit(start, cur_dim, fin, result);
            },
        );

        SCORE_ENGINE_POOL_BYTES.set(self.pool_bytes() as u64);
    }

    /// Bytes of scratch capacity currently held by the engine's pool —
    /// every pool: the f64 ping-pong scratch, the f32 cast-input and
    /// ping-pong scratch, and the per-block result buffers.
    pub fn pool_bytes(&self) -> usize {
        let scratch: usize = self
            .scratch
            .iter()
            .map(|s| s.a.capacity() + s.b.capacity())
            .sum();
        let results: usize = self.results.iter().map(Vec::capacity).sum();
        let f32_scratch: usize = self
            .scratch_f32
            .iter()
            .map(|s| s.x.capacity() + s.a.capacity() + s.b.capacity())
            .sum();
        (scratch + results) * std::mem::size_of::<f64>() + f32_scratch * std::mem::size_of::<f32>()
    }
}

/// A [`ScoreEngine`] behind a `Mutex`, embeddable in fitted models whose
/// `score(&self, ..)` takes a shared reference. The scratch pool is pure
/// cache, so `Clone` hands back a *fresh* empty cell (cloned models re-warm
/// independently) and equality/serialization concerns never arise.
#[derive(Default)]
pub struct EngineCell(Mutex<ScoreEngine>);

impl EngineCell {
    /// A cell holding a fresh engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` with exclusive access to the engine.
    pub fn with<R>(&self, f: impl FnOnce(&mut ScoreEngine) -> R) -> R {
        let mut guard = self
            .0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        f(&mut guard)
    }
}

impl Clone for EngineCell {
    fn clone(&self) -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for EngineCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineCell").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, Mlp};
    use targad_linalg::rng as lrng;

    fn model(seed: u64, dims: &[usize], out_act: Activation) -> (VarStore, Mlp) {
        let mut rng = lrng::seeded(seed);
        let mut vs = VarStore::new();
        let mlp = Mlp::new(&mut vs, &mut rng, dims, Activation::Relu, out_act);
        (vs, mlp)
    }

    #[test]
    fn engine_matches_eval_rt_exactly() {
        let (vs, mlp) = model(7, &[9, 24, 16, 3], Activation::Sigmoid);
        let mut rng = lrng::seeded(8);
        // Straddles several blocks, last one ragged.
        let x = lrng::normal_matrix(&mut rng, 3 * INFER_BLOCK_ROWS + 37, 9, 0.0, 2.0);
        for threads in [1, 2, 7] {
            let rt = Runtime::new(threads);
            let want = mlp.eval_rt(&vs, &x, &rt);
            let mut engine = ScoreEngine::new();
            let mut got = Matrix::zeros(x.rows(), 3);
            engine.forward_into(&[(&mlp, &vs)], &x, &rt, &mut got);
            assert_eq!(got, want, "threads={threads}");

            let scores = engine.score(&[(&mlp, &vs)], &x, &rt, |_, row| row[0] - row[2]);
            let want_scores: Vec<f64> = (0..want.rows())
                .map(|r| want[(r, 0)] - want[(r, 2)])
                .collect();
            assert_eq!(scores, want_scores, "threads={threads}");
        }
    }

    #[test]
    fn engine_chains_stacked_models_like_sequential_eval() {
        let (vs_e, enc) = model(11, &[6, 12, 4], Activation::None);
        let (vs_d, dec) = model(12, &[4, 12, 6], Activation::Sigmoid);
        let mut rng = lrng::seeded(13);
        let x = lrng::normal_matrix(&mut rng, 301, 6, 0.0, 1.0);
        let rt = Runtime::new(2);
        let want = dec.eval_rt(&vs_d, &enc.eval_rt(&vs_e, &x, &rt), &rt);
        let mut engine = ScoreEngine::new();
        let mut got = Matrix::zeros(301, 6);
        engine.forward_into(&[(&enc, &vs_e), (&dec, &vs_d)], &x, &rt, &mut got);
        assert_eq!(got, want);
    }

    #[test]
    fn engine_is_worker_count_invariant() {
        let (vs, mlp) = model(21, &[5, 32, 1], Activation::None);
        let mut rng = lrng::seeded(22);
        let x = lrng::normal_matrix(&mut rng, 2 * INFER_BLOCK_ROWS + 3, 5, 0.0, 1.0);
        let mut engine = ScoreEngine::new();
        let base = engine.score(&[(&mlp, &vs)], &x, &Runtime::new(1), |_, row| row[0]);
        for threads in [2, 3, 7, 16] {
            let got = engine.score(&[(&mlp, &vs)], &x, &Runtime::new(threads), |_, row| row[0]);
            assert_eq!(got, base, "threads={threads}");
        }
    }

    #[test]
    fn engine_handles_empty_input() {
        let (vs, mlp) = model(31, &[4, 8, 2], Activation::Tanh);
        let x = Matrix::zeros(0, 4);
        let mut engine = ScoreEngine::new();
        let scores = engine.score(&[(&mlp, &vs)], &x, &Runtime::serial(), |_, row| row[0]);
        assert!(scores.is_empty());
    }

    #[test]
    fn engine_pool_is_reused_across_batches() {
        let (vs, mlp) = model(41, &[8, 64, 1], Activation::Sigmoid);
        let mut rng = lrng::seeded(42);
        let x = lrng::normal_matrix(&mut rng, 700, 8, 0.0, 1.0);
        let rt = Runtime::new(2);
        let mut engine = ScoreEngine::new();
        let first = engine.score(&[(&mlp, &vs)], &x, &rt, |_, row| row[0]);
        let warm = engine.pool_bytes();
        assert!(warm > 0);
        let second = engine.score(&[(&mlp, &vs)], &x, &rt, |_, row| row[0]);
        assert_eq!(first, second);
        assert_eq!(engine.pool_bytes(), warm, "pool must not grow when warm");
    }

    /// The f32 path's own reference: the per-layer plain-loop f32 kernel
    /// applied to the whole batch at once (no block streaming, no packing).
    fn forward_f32_reference(vs: &VarStore, mlp: &Mlp, x: &Matrix) -> Vec<f32> {
        let mut cur: Vec<f32> = x.as_slice().iter().map(|&v| v as f32).collect();
        let mut cur_dim = mlp.in_dim();
        for (i, layer) in mlp.layers().iter().enumerate() {
            let (wid, bid) = layer.params();
            let w: Vec<f32> = vs.value(wid).as_slice().iter().map(|&v| v as f32).collect();
            let bias: Vec<f32> = vs.value(bid).as_slice().iter().map(|&v| v as f32).collect();
            let d_out = layer.out_dim();
            let mut next = vec![0.0f32; x.rows() * d_out];
            targad_linalg::f32kernel::reference::matmul_bias_act_f32(
                &cur,
                cur_dim,
                &w,
                d_out,
                &bias,
                mlp.act(i).epi(),
                &mut next,
            );
            cur = next;
            cur_dim = d_out;
        }
        cur
    }

    #[test]
    fn f32_engine_matches_plain_f32_reference_exactly() {
        let (vs, mlp) = model(51, &[9, 24, 16, 3], Activation::Sigmoid);
        let mut rng = lrng::seeded(52);
        let x = lrng::normal_matrix(&mut rng, 2 * INFER_BLOCK_ROWS + 19, 9, 0.0, 2.0);
        let want: Vec<f64> = forward_f32_reference(&vs, &mlp, &x)
            .chunks_exact(3)
            .map(|row| f64::from(row[0]) - f64::from(row[2]))
            .collect();
        let plan = F32Plan::from_stack(&[(&mlp, &vs)]);
        assert_eq!((plan.d_in(), plan.d_out()), (9, 3));
        assert!(plan.bytes() > 0);
        let mut engine = ScoreEngine::new();
        for threads in [1, 2, 7] {
            let got = engine.score_f32(&plan, &x, &Runtime::new(threads), |_, row| {
                f64::from(row[0]) - f64::from(row[2])
            });
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn f32_engine_is_worker_count_invariant() {
        let (vs, mlp) = model(61, &[5, 32, 4], Activation::None);
        let mut rng = lrng::seeded(62);
        let x = lrng::normal_matrix(&mut rng, 3 * INFER_BLOCK_ROWS + 7, 5, 0.0, 1.0);
        let plan = F32Plan::from_stack(&[(&mlp, &vs)]);
        let mut engine = ScoreEngine::new();
        let base = engine.score_pairs_f32(&plan, &x, &Runtime::new(1), |_, row| {
            (f64::from(row[0]), f64::from(row[3]))
        });
        for threads in [2, 7, 16] {
            let got = engine.score_pairs_f32(&plan, &x, &Runtime::new(threads), |_, row| {
                (f64::from(row[0]), f64::from(row[3]))
            });
            assert_eq!(got, base, "threads={threads}");
        }
    }

    #[test]
    fn f32_engine_handles_empty_input() {
        let (vs, mlp) = model(71, &[4, 8, 2], Activation::Tanh);
        let plan = F32Plan::from_stack(&[(&mlp, &vs)]);
        let mut engine = ScoreEngine::new();
        let scores = engine.score_f32(&plan, &Matrix::zeros(0, 4), &Runtime::serial(), |_, row| {
            f64::from(row[0])
        });
        assert!(scores.is_empty());
    }

    #[test]
    fn precision_names_round_trip() {
        assert_eq!(EnginePrecision::default(), EnginePrecision::F64);
        for p in [EnginePrecision::F64, EnginePrecision::F32] {
            assert_eq!(EnginePrecision::parse(p.name()), Some(p));
        }
        assert_eq!(EnginePrecision::parse("single"), Some(EnginePrecision::F32));
        assert_eq!(EnginePrecision::parse("bf16"), None);
    }
}
