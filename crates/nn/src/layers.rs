//! Fully-connected layers and multi-layer perceptrons.

use rand::Rng;
use targad_autograd::{ParamId, Tape, Var, VarStore};
use targad_linalg::{rng as lrng, EpiAct, Matrix};
use targad_runtime::Runtime;

/// Activation functions used across the reproduction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Identity (no activation).
    None,
    /// Rectified linear unit.
    Relu,
    /// Leaky ReLU with slope 0.01 (used by GAN baselines).
    LeakyRelu,
    /// Logistic sigmoid (decoder outputs into `[0, 1]`, GAN discriminators).
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Applies the activation on the tape (training path).
    pub fn forward(self, tape: &mut Tape, v: Var) -> Var {
        match self {
            Activation::None => v,
            Activation::Relu => tape.relu(v),
            Activation::LeakyRelu => tape.leaky_relu(v, 0.01),
            Activation::Sigmoid => tape.sigmoid(v),
            Activation::Tanh => tape.tanh(v),
        }
    }

    /// The scalar epilogue form of this activation — the single definition
    /// shared by [`Activation::eval`], [`Activation::eval_rt`], and the
    /// fused GEMM write-back in `targad-linalg`.
    pub fn epi(self) -> EpiAct {
        match self {
            Activation::None => EpiAct::None,
            Activation::Relu => EpiAct::Relu,
            Activation::LeakyRelu => EpiAct::LeakyRelu,
            Activation::Sigmoid => EpiAct::Sigmoid,
            Activation::Tanh => EpiAct::Tanh,
        }
    }

    /// Applies the activation directly to a matrix (inference path). Mapped
    /// in place — the caller hands over the matrix, so no fresh allocation.
    pub fn eval(self, mut m: Matrix) -> Matrix {
        if self != Activation::None {
            let epi = self.epi();
            m.map_inplace(|x| epi.apply(x));
        }
        m
    }

    /// [`Activation::eval`] executed on `rt`; bit-identical to the serial
    /// path at any worker count.
    pub fn eval_rt(self, mut m: Matrix, rt: &Runtime) -> Matrix {
        if self != Activation::None {
            let epi = self.epi();
            m.map_inplace_rt(|x| epi.apply(x), rt);
        }
        m
    }
}

/// A dense layer `y = x·W + b` with Xavier-initialized weights.
#[derive(Clone, Copy, Debug)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a new `in_dim -> out_dim` layer in `store`.
    pub fn new(store: &mut VarStore, rng: &mut impl Rng, in_dim: usize, out_dim: usize) -> Self {
        let w = store.add(lrng::xavier_uniform(rng, in_dim, out_dim));
        let b = store.add(Matrix::zeros(1, out_dim));
        Self {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Registers a layer whose parameters *are* the given matrices —
    /// the snapshot-load path. Unlike [`Linear::new`] no initialized
    /// weights or gradient accumulators are allocated (the parameters
    /// are registered frozen), so `w` and `b` may borrow a shared
    /// buffer (an `mmap`ed model snapshot) and stay borrowed, with
    /// zero weight-sized allocations. The resulting layer is
    /// inference-only: driving a backward pass over it panics.
    ///
    /// # Panics
    /// Panics unless `b` is a `1 x out_dim` row matching `w`'s columns.
    pub fn from_params(store: &mut VarStore, w: Matrix, b: Matrix) -> Self {
        let (in_dim, out_dim) = w.shape();
        assert_eq!(
            b.shape(),
            (1, out_dim),
            "Linear::from_params: bias shape {:?} does not match weights {:?}",
            b.shape(),
            w.shape()
        );
        Self {
            w: store.add_frozen(w),
            b: store.add_frozen(b),
            in_dim,
            out_dim,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Parameter handles `(weights, bias)`.
    pub fn params(&self) -> (ParamId, ParamId) {
        (self.w, self.b)
    }

    /// Training-path forward on the tape.
    pub fn forward(&self, tape: &mut Tape, store: &VarStore, x: Var) -> Var {
        let w = tape.param(store, self.w);
        let b = tape.param(store, self.b);
        let z = tape.matmul(x, w);
        tape.add_row_broadcast(z, b)
    }

    /// Training-path forward as one fused `Dense` node: the GEMM applies
    /// bias and `act` at write-back, and the backward sweep folds the
    /// activation derivative into the gradient GEMMs' read paths.
    /// Bit-identical to [`Linear::forward`] followed by `act` — this is
    /// the fast arm behind [`crate::fused_backward_enabled`], not a
    /// different computation.
    pub fn forward_fused(&self, tape: &mut Tape, store: &VarStore, x: Var, act: Activation) -> Var {
        let w = tape.param(store, self.w);
        let b = tape.param(store, self.b);
        tape.dense(x, w, b, act.epi())
    }

    /// Inference-path forward on plain matrices.
    pub fn eval(&self, store: &VarStore, x: &Matrix) -> Matrix {
        x.matmul(store.value(self.w))
            .add_row_broadcast(store.value(self.b))
    }

    /// [`Linear::eval`] executed on `rt`; bit-identical to the serial path
    /// at any worker count (the batched product parallelizes over rows).
    pub fn eval_rt(&self, store: &VarStore, x: &Matrix, rt: &Runtime) -> Matrix {
        x.matmul_rt(store.value(self.w), rt)
            .add_row_broadcast(store.value(self.b))
    }

    /// Tape forward treating this layer's parameters as *constants*:
    /// gradients flow through to `x` but never into `store`. Required when
    /// a module from another [`VarStore`] participates in a loss (e.g. a
    /// GAN generator step backpropagating through a frozen discriminator) —
    /// [`crate::Mlp::forward`]'s parameter nodes are only valid for the
    /// store later passed to `Tape::backward`.
    pub fn forward_frozen(&self, tape: &mut Tape, store: &VarStore, x: Var) -> Var {
        let w = tape.input(store.value(self.w).clone());
        let b = tape.input(store.value(self.b).clone());
        let z = tape.matmul(x, w);
        tape.add_row_broadcast(z, b)
    }

    /// [`Linear::forward_frozen`] as one fused `Dense` node over pooled
    /// constant copies of the parameters (gradients still flow to `x`
    /// only). Bit-identical to the unfused frozen path followed by `act`.
    pub fn forward_frozen_fused(
        &self,
        tape: &mut Tape,
        store: &VarStore,
        x: Var,
        act: Activation,
    ) -> Var {
        let w = tape.input_from(store.value(self.w));
        let b = tape.input_from(store.value(self.b));
        tape.dense(x, w, b, act.epi())
    }
}

/// A multi-layer perceptron: `dims = [in, h1, …, out]` with `hidden_act`
/// between layers and `out_act` after the last.
///
/// This single type covers the paper's classifier `f`, the encoders and
/// decoders of every autoencoder, DevNet/PReNet scoring networks, and the
/// generators/discriminators of the GAN baselines.
#[derive(Clone, Debug)]
pub struct Mlp {
    layers: Vec<Linear>,
    hidden_act: Activation,
    out_act: Activation,
}

impl Mlp {
    /// Builds an MLP with the given layer dimensions.
    ///
    /// # Panics
    /// Panics if `dims` has fewer than two entries.
    pub fn new(
        store: &mut VarStore,
        rng: &mut impl Rng,
        dims: &[usize],
        hidden_act: Activation,
        out_act: Activation,
    ) -> Self {
        assert!(
            dims.len() >= 2,
            "Mlp::new: need at least [in, out] dims, got {dims:?}"
        );
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(store, rng, w[0], w[1]))
            .collect();
        Self {
            layers,
            hidden_act,
            out_act,
        }
    }

    /// Builds an MLP directly over `(weights, bias)` pairs, one per layer
    /// in forward order — the snapshot-load path (see
    /// [`Linear::from_params`]; the matrices may borrow an `mmap`ed
    /// snapshot and are registered without copying).
    ///
    /// # Panics
    /// Panics if `params` is empty or consecutive layer shapes don't chain
    /// (layer `i`'s `out_dim` must equal layer `i+1`'s `in_dim`).
    pub fn from_params(
        store: &mut VarStore,
        params: impl IntoIterator<Item = (Matrix, Matrix)>,
        hidden_act: Activation,
        out_act: Activation,
    ) -> Self {
        let layers: Vec<Linear> = params
            .into_iter()
            .map(|(w, b)| Linear::from_params(store, w, b))
            .collect();
        assert!(
            !layers.is_empty(),
            "Mlp::from_params: need at least one layer"
        );
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].out_dim(),
                pair[1].in_dim(),
                "Mlp::from_params: layer shapes do not chain"
            );
        }
        Self {
            layers,
            hidden_act,
            out_act,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.layers[self.layers.len() - 1].out_dim()
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The layer stack, in forward order.
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// The activation applied after layer `i` (`out_act` on the last layer,
    /// `hidden_act` otherwise) — the rule every forward path shares.
    pub fn act(&self, i: usize) -> Activation {
        if i + 1 == self.layers.len() {
            self.out_act
        } else {
            self.hidden_act
        }
    }

    /// The `[in, h1, …, out]` dimension vector this MLP was built with.
    pub fn dims(&self) -> Vec<usize> {
        let mut dims = vec![self.in_dim()];
        dims.extend(self.layers.iter().map(Linear::out_dim));
        dims
    }

    /// Training-path forward on the tape. When the fused backward gate is
    /// open (see [`crate::fused_backward_enabled`]) every layer+activation
    /// pair is emitted as one fused `Dense` node; when it is closed, as
    /// the unfused matmul/broadcast/activation triplet. The two arms are
    /// bit-identical — forward values, gradients, and fitted weights — so
    /// the unfused arm doubles as the exact-equality oracle.
    pub fn forward(&self, tape: &mut Tape, store: &VarStore, x: Var) -> Var {
        let fused = crate::fused::fused_backward_enabled();
        let mut h = x;
        for (i, layer) in self.layers.iter().enumerate() {
            let act = self.act(i);
            if fused {
                h = layer.forward_fused(tape, store, h, act);
            } else {
                h = layer.forward(tape, store, h);
                h = act.forward(tape, h);
            }
        }
        h
    }

    /// Inference-path forward on plain matrices.
    pub fn eval(&self, store: &VarStore, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.eval(store, &h);
            let act = if i == last {
                self.out_act
            } else {
                self.hidden_act
            };
            h = act.eval(h);
        }
        h
    }

    /// [`Mlp::eval`] executed on `rt`: the batched forward pass
    /// parallelizes over rows, bit-identical to the serial path at any
    /// worker count.
    pub fn eval_rt(&self, store: &VarStore, x: &Matrix, rt: &Runtime) -> Matrix {
        let mut h = x.clone();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.eval_rt(store, &h, rt);
            let act = if i == last {
                self.out_act
            } else {
                self.hidden_act
            };
            h = act.eval_rt(h, rt);
        }
        h
    }

    /// Tape forward with frozen parameters — see
    /// [`Linear::forward_frozen`]. Gated on the fused backward path like
    /// [`Mlp::forward`] (the fused frozen arm also takes pooled parameter
    /// copies instead of fresh clones).
    pub fn forward_frozen(&self, tape: &mut Tape, store: &VarStore, x: Var) -> Var {
        let fused = crate::fused::fused_backward_enabled();
        let mut h = x;
        for (i, layer) in self.layers.iter().enumerate() {
            let act = self.act(i);
            if fused {
                h = layer.forward_frozen_fused(tape, store, h, act);
            } else {
                h = layer.forward_frozen(tape, store, h);
                h = act.forward(tape, h);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use targad_autograd::check::gradient_check;

    #[test]
    fn linear_shapes_and_determinism() {
        let mut rng = lrng::seeded(1);
        let mut vs = VarStore::new();
        let layer = Linear::new(&mut vs, &mut rng, 4, 3);
        assert_eq!(layer.in_dim(), 4);
        assert_eq!(layer.out_dim(), 3);
        let x = Matrix::ones(2, 4);
        let y = layer.eval(&vs, &x);
        assert_eq!(y.shape(), (2, 3));

        // Same seed → same init → same output.
        let mut rng2 = lrng::seeded(1);
        let mut vs2 = VarStore::new();
        let layer2 = Linear::new(&mut vs2, &mut rng2, 4, 3);
        assert_eq!(layer2.eval(&vs2, &x), y);
    }

    #[test]
    fn mlp_forward_and_eval_agree() {
        let mut rng = lrng::seeded(2);
        let mut vs = VarStore::new();
        let mlp = Mlp::new(
            &mut vs,
            &mut rng,
            &[3, 5, 2],
            Activation::Relu,
            Activation::Sigmoid,
        );
        let x = lrng::normal_matrix(&mut rng, 4, 3, 0.0, 1.0);

        let via_eval = mlp.eval(&vs, &x);
        let mut tape = Tape::new();
        let xv = tape.input(x);
        let out = mlp.forward(&mut tape, &vs, xv);
        let via_tape = tape.value(out);
        assert_eq!(via_tape.shape(), (4, 2));
        for r in 0..4 {
            for c in 0..2 {
                assert!((via_tape[(r, c)] - via_eval[(r, c)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn mlp_gradients_check_out() {
        let mut rng = lrng::seeded(3);
        let mut vs = VarStore::new();
        let mlp = Mlp::new(
            &mut vs,
            &mut rng,
            &[3, 4, 2],
            Activation::Tanh,
            Activation::None,
        );
        let x = lrng::normal_matrix(&mut rng, 5, 3, 0.0, 1.0);
        let y = lrng::normal_matrix(&mut rng, 5, 2, 0.0, 1.0);
        let report = gradient_check(
            &mut vs,
            |t, vs| {
                let xv = t.input(x.clone());
                let yv = t.input(y.clone());
                let out = mlp.forward(t, vs, xv);
                t.mse(out, yv)
            },
            1e-5,
        );
        assert!(report.passes(1e-6), "{report:?}");
    }

    #[test]
    fn sigmoid_output_is_bounded() {
        let mut rng = lrng::seeded(4);
        let mut vs = VarStore::new();
        let mlp = Mlp::new(
            &mut vs,
            &mut rng,
            &[2, 3, 1],
            Activation::Relu,
            Activation::Sigmoid,
        );
        let x = lrng::normal_matrix(&mut rng, 50, 2, 0.0, 10.0);
        let y = mlp.eval(&vs, &x);
        assert!(y.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn from_params_reproduces_trained_network() {
        let mut rng = lrng::seeded(6);
        let mut vs = VarStore::new();
        let mlp = Mlp::new(
            &mut vs,
            &mut rng,
            &[3, 5, 2],
            Activation::Relu,
            Activation::Sigmoid,
        );
        let params: Vec<(Matrix, Matrix)> = mlp
            .layers()
            .iter()
            .map(|l| {
                let (w, b) = l.params();
                (vs.value(w).clone(), vs.value(b).clone())
            })
            .collect();

        let mut vs2 = VarStore::new();
        let rebuilt = Mlp::from_params(&mut vs2, params, Activation::Relu, Activation::Sigmoid);
        assert_eq!(rebuilt.dims(), mlp.dims());
        let x = lrng::normal_matrix(&mut rng, 4, 3, 0.0, 1.0);
        assert_eq!(rebuilt.eval(&vs2, &x), mlp.eval(&vs, &x));
    }

    #[test]
    #[should_panic(expected = "do not chain")]
    fn from_params_rejects_mismatched_shapes() {
        let mut vs = VarStore::new();
        let _ = Mlp::from_params(
            &mut vs,
            vec![
                (Matrix::zeros(3, 4), Matrix::zeros(1, 4)),
                (Matrix::zeros(5, 2), Matrix::zeros(1, 2)),
            ],
            Activation::Relu,
            Activation::None,
        );
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn mlp_rejects_single_dim() {
        let mut rng = lrng::seeded(5);
        let mut vs = VarStore::new();
        let _ = Mlp::new(&mut vs, &mut rng, &[3], Activation::Relu, Activation::None);
    }
}
