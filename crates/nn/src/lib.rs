//! Minimal neural-network toolkit for the TargAD reproduction.
//!
//! Provides exactly the model zoo the paper and its baselines need:
//! fully-connected [`Mlp`]s (the classifier `f`, DevNet/PReNet scorers, GAN
//! generators/discriminators) and [`AutoEncoder`]s (candidate selection,
//! DeepSAD pretraining, FEAWAD), together with [`Adam`]/[`Sgd`] optimizers
//! and shuffled mini-batch iteration.
//!
//! Two forward paths exist per module:
//! - `forward` builds a graph on a [`targad_autograd::Tape`] for training;
//! - `eval` computes values directly on [`targad_linalg::Matrix`] for
//!   inference (scoring shouldn't pay tape overhead).

pub mod ae;
pub mod batch;
pub mod dp;
pub mod fused;
pub mod infer;
pub mod layers;
pub mod optim;

pub use ae::AutoEncoder;
pub use batch::shuffled_batches;
pub use dp::{shard_count, shard_range, Parts, ShardedStep, MAX_PARTS, SHARD_ROWS};
pub use fused::{force_fused_backward, fused_backward_enabled, FusedBackwardGuard};
pub use infer::{EngineCell, EnginePrecision, F32Plan, ModelStack, ScoreEngine, INFER_BLOCK_ROWS};
pub use layers::{Activation, Linear, Mlp};
pub use optim::{Adam, Optimizer, Sgd};
