//! First-order optimizers.
//!
//! The paper trains everything with Adam (§IV-C); SGD is provided for the
//! optimizer ablation bench.

use targad_autograd::VarStore;
use targad_linalg::Matrix;

/// A gradient-based parameter updater over a [`VarStore`].
pub trait Optimizer {
    /// Applies one update step using the gradients accumulated in `store`.
    fn step(&mut self, store: &mut VarStore);
}

/// Plain stochastic gradient descent with optional momentum.
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: Vec<Matrix>,
}

impl Sgd {
    /// SGD with learning rate `lr` and no momentum.
    pub fn new(lr: f64) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// SGD with learning rate `lr` and momentum `momentum`.
    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut VarStore) {
        let lr = self.lr;
        let mu = self.momentum;
        let velocity = &mut self.velocity;
        let mut i = 0;
        store.update_each(|value, grad| {
            if velocity.len() <= i {
                velocity.push(Matrix::zeros(value.rows(), value.cols()));
            }
            let v = &mut velocity[i];
            if mu != 0.0 {
                v.map_inplace(|x| x * mu);
                v.add_scaled_inplace(grad, 1.0);
                value.add_scaled_inplace(v, -lr);
            } else {
                value.add_scaled_inplace(grad, -lr);
            }
            i += 1;
        });
    }
}

/// Adaptive Moment Estimation (Kingma & Ba), the optimizer used for both the
/// autoencoders and the classifier in the paper (§IV-C).
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Adam with default `β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`.
    pub fn new(lr: f64) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Adam with explicit hyper-parameters.
    pub fn with_params(lr: f64, beta1: f64, beta2: f64, eps: f64) -> Self {
        Self {
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// The configured learning rate.
    pub fn lr(&self) -> f64 {
        self.lr
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut VarStore) {
        self.t += 1;
        let (b1, b2, eps) = (self.beta1, self.beta2, self.eps);
        let bias1 = 1.0 - b1.powi(self.t as i32);
        let bias2 = 1.0 - b2.powi(self.t as i32);
        let lr_t = self.lr * bias2.sqrt() / bias1;
        let (m, v) = (&mut self.m, &mut self.v);
        let mut i = 0;
        store.update_each(|value, grad| {
            if m.len() <= i {
                m.push(Matrix::zeros(value.rows(), value.cols()));
                v.push(Matrix::zeros(value.rows(), value.cols()));
            }
            let mi = &mut m[i];
            let vi = &mut v[i];
            for ((mm, vv), (&g, val)) in mi
                .as_mut_slice()
                .iter_mut()
                .zip(vi.as_mut_slice())
                .zip(grad.as_slice().iter().zip(value.as_mut_slice()))
            {
                *mm = b1 * *mm + (1.0 - b1) * g;
                *vv = b2 * *vv + (1.0 - b2) * g * g;
                *val -= lr_t * *mm / (vv.sqrt() + eps);
            }
            i += 1;
        });
    }
}

/// Rescales gradients in `store` so their global L2 norm is at most
/// `max_norm`. Returns the pre-clipping norm.
pub fn clip_grad_norm(store: &mut VarStore, max_norm: f64) -> f64 {
    let norm = store.grad_norm();
    if norm > max_norm && norm > 0.0 {
        targad_obs::metrics::CLIP_ACTIVATIONS.inc();
        store.scale_grads(max_norm / norm);
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use targad_autograd::Tape;

    /// Minimizes `(w - 3)^2` and expects convergence to 3.
    fn converges_to_three(opt: &mut dyn Optimizer, steps: usize) -> f64 {
        let mut vs = VarStore::new();
        let w = vs.add(Matrix::from_vec(1, 1, vec![0.0]));
        let mut t = Tape::new();
        for _ in 0..steps {
            vs.zero_grads();
            t.reset();
            let wv = t.param(&vs, w);
            let shifted = t.add_scalar(wv, -3.0);
            let sq = t.square(shifted);
            let loss = t.mean_all(sq);
            t.backward(loss, &mut vs);
            opt.step(&mut vs);
        }
        vs.value(w)[(0, 0)]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let w = converges_to_three(&mut opt, 200);
        assert!((w - 3.0).abs() < 1e-6, "w = {w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        let w = converges_to_three(&mut opt, 200);
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let w = converges_to_three(&mut opt, 500);
        assert!((w - 3.0).abs() < 1e-4, "w = {w}");
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction the very first Adam step has magnitude ≈ lr.
        let mut vs = VarStore::new();
        let w = vs.add(Matrix::from_vec(1, 1, vec![0.0]));
        let mut t = Tape::new();
        let wv = t.param(&vs, w);
        let scaled = t.scale(wv, 5.0); // dL/dw = 5
        let loss = t.mean_all(scaled);
        t.backward(loss, &mut vs);
        let mut opt = Adam::new(0.01);
        opt.step(&mut vs);
        assert!((vs.value(w)[(0, 0)] + 0.01).abs() < 1e-6);
    }

    #[test]
    fn clip_grad_norm_caps_large_gradients() {
        let mut vs = VarStore::new();
        let id = vs.add(Matrix::zeros(1, 2));
        vs.update_each(|_, _| {});
        // Inject a gradient of norm 5 via a fake backward.
        let mut t = Tape::new();
        let wv = t.param(&vs, id);
        let target = t.input(Matrix::from_vec(1, 2, vec![-3.0, -4.0]));
        let prod = t.mul(wv, target);
        let loss = t.sum_all(prod);
        t.backward(loss, &mut vs);
        let pre = clip_grad_norm(&mut vs, 1.0);
        assert!((pre - 5.0).abs() < 1e-12);
        assert!((vs.grad_norm() - 1.0).abs() < 1e-12);
    }
}
