//! `ScoreEngine::pool_bytes` / `score.engine_pool_bytes` accounting.
//!
//! The gauge must cover *every* scratch pool the engine holds — the f64
//! ping-pong buffers, the per-block result slots, and the f32 cast-input +
//! ping-pong buffers of the reduced-precision path — and must equal the
//! actual reserved capacities, recomputed here from first principles.
//!
//! Lives in its own integration-test binary (one process, one test) because
//! the gauge is process-global: parallel unit tests scoring their own
//! engines would race its value.

use targad_autograd::VarStore;
use targad_linalg::rng as lrng;
use targad_nn::{Activation, F32Plan, Mlp, ScoreEngine, INFER_BLOCK_ROWS};
use targad_obs::metrics::SCORE_ENGINE_POOL_BYTES;
use targad_runtime::Runtime;

#[test]
fn pool_bytes_covers_every_scratch_pool_and_matches_the_gauge() {
    targad_obs::set_enabled(true);
    // Probe whether telemetry is compiled in (the `--no-default-features`
    // build stubs gauges to no-ops; the accounting below still holds, but
    // the gauge assertions would read 0).
    SCORE_ENGINE_POOL_BYTES.set(1);
    let telemetry = SCORE_ENGINE_POOL_BYTES.get() == 1;
    SCORE_ENGINE_POOL_BYTES.reset();

    let mut rng = lrng::seeded(81);
    let mut vs = VarStore::new();
    let (d_in, hidden, d_out) = (8usize, 64usize, 2usize);
    let mlp = Mlp::new(
        &mut vs,
        &mut rng,
        &[d_in, hidden, d_out],
        Activation::Relu,
        Activation::Sigmoid,
    );
    let x = lrng::normal_matrix(&mut rng, INFER_BLOCK_ROWS + 50, d_in, 0.0, 1.0);
    let rt = Runtime::new(2);
    let mut engine = ScoreEngine::new();

    engine.score(&[(&mlp, &vs)], &x, &rt, |_, row: &[f64]| row[0]);
    let f64_only = engine.pool_bytes();
    assert!(f64_only > 0);
    if telemetry {
        assert_eq!(
            SCORE_ENGINE_POOL_BYTES.get(),
            f64_only as u64,
            "gauge must track pool_bytes after an f64 batch"
        );
    }

    let plan = F32Plan::from_stack(&[(&mlp, &vs)]);
    engine.score_f32(&plan, &x, &rt, |_, row: &[f32]| f64::from(row[0]));
    let with_f32 = engine.pool_bytes();
    assert!(
        with_f32 > f64_only,
        "f32 scratch pools must be accounted: {with_f32} <= {f64_only}"
    );
    if telemetry {
        assert_eq!(
            SCORE_ENGINE_POOL_BYTES.get(),
            with_f32 as u64,
            "gauge must track pool_bytes after an f32 batch"
        );
    }

    // The reported number is the actual reserved bytes: recompute the
    // high-water capacities from first principles on a fresh *serial*
    // engine (one worker, so every pool size is fully determined by the
    // model shape and the first — largest — row block).
    let mut fresh = ScoreEngine::new();
    let serial = Runtime::serial();
    fresh.score(&[(&mlp, &vs)], &x, &serial, |_, row: &[f64]| row[0]);
    fresh.score_f32(&plan, &x, &serial, |_, row: &[f32]| f64::from(row[0]));
    let rb0 = INFER_BLOCK_ROWS; // first block sets the high-water marks
    let f64_scratch = rb0 * hidden + rb0 * d_out; // ping-pong a + b
    let f32_scratch = rb0 * d_in + rb0 * hidden + rb0 * d_out; // cast x + a + b
    let results = x.rows(); // one f64 score slot per row, across all blocks
    let expected = (f64_scratch + results) * std::mem::size_of::<f64>()
        + f32_scratch * std::mem::size_of::<f32>();
    assert_eq!(
        fresh.pool_bytes(),
        expected,
        "pool_bytes must equal the reserved capacities of all pools"
    );

    // Warm pools must not grow on a repeat batch, and the gauge follows.
    let warm = engine.pool_bytes();
    engine.score_f32(&plan, &x, &rt, |_, row: &[f32]| f64::from(row[0]));
    assert_eq!(engine.pool_bytes(), warm, "pool must not grow when warm");
    if telemetry {
        assert_eq!(SCORE_ENGINE_POOL_BYTES.get(), warm as u64);
    }
    targad_obs::set_enabled(false);
}
