//! Property tests: small nets must be trainable on random regression
//! problems, and training must strictly reduce the loss for benign
//! configurations.

use proptest::prelude::*;
use targad_autograd::{Tape, VarStore};
use targad_linalg::{rng as lrng, Matrix};
use targad_nn::{Activation, Adam, Mlp, Optimizer, Sgd};

fn mse_loss(mlp: &Mlp, store: &VarStore, x: &Matrix, y: &Matrix) -> f64 {
    let pred = mlp.eval(store, x);
    (&pred - y).sq_norm() / (y.rows() as f64 * y.cols() as f64)
}

fn train_steps(
    mlp: &Mlp,
    store: &mut VarStore,
    opt: &mut dyn Optimizer,
    x: &Matrix,
    y: &Matrix,
    steps: usize,
) {
    let mut tape = Tape::new();
    for _ in 0..steps {
        store.zero_grads();
        tape.reset();
        let xv = tape.input_from(x);
        let yv = tape.input_from(y);
        let pred = mlp.forward(&mut tape, store, xv);
        let loss = tape.mse(pred, yv);
        tape.backward(loss, store);
        opt.step(store);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Adam reduces the loss of a random linear-regression problem.
    #[test]
    fn adam_reduces_regression_loss(seed in 0u64..100_000, hidden in 2usize..8) {
        let mut rng = lrng::seeded(seed);
        let x = lrng::normal_matrix(&mut rng, 24, 3, 0.0, 1.0);
        let true_w = lrng::normal_matrix(&mut rng, 3, 2, 0.0, 1.0);
        let y = x.matmul(&true_w);

        let mut store = VarStore::new();
        let mlp = Mlp::new(&mut store, &mut rng, &[3, hidden, 2], Activation::Tanh, Activation::None);
        let before = mse_loss(&mlp, &store, &x, &y);
        let mut opt = Adam::new(1e-2);
        train_steps(&mlp, &mut store, &mut opt, &x, &y, 150);
        let after = mse_loss(&mlp, &store, &x, &y);
        prop_assert!(after < before * 0.8, "before {before}, after {after}");
        prop_assert!(after.is_finite());
    }

    /// SGD also makes progress (slower is fine).
    #[test]
    fn sgd_reduces_regression_loss(seed in 0u64..100_000) {
        let mut rng = lrng::seeded(seed);
        let x = lrng::normal_matrix(&mut rng, 16, 2, 0.0, 1.0);
        let y = x.map(|v| v * 0.5);
        let y = Matrix::from_vec(16, 2, y.as_slice().to_vec());

        let mut store = VarStore::new();
        let mlp = Mlp::new(&mut store, &mut rng, &[2, 2], Activation::None, Activation::None);
        let before = mse_loss(&mlp, &store, &x, &y);
        let mut opt = Sgd::new(5e-2);
        train_steps(&mlp, &mut store, &mut opt, &x, &y, 200);
        let after = mse_loss(&mlp, &store, &x, &y);
        prop_assert!(after < before, "before {before}, after {after}");
    }

    /// forward() on the tape and eval() off-tape always agree.
    #[test]
    fn tape_and_eval_agree(seed in 0u64..100_000, rows in 1usize..10) {
        let mut rng = lrng::seeded(seed);
        let mlp_store = &mut VarStore::new();
        let mlp = Mlp::new(mlp_store, &mut rng, &[4, 5, 3], Activation::Relu, Activation::Sigmoid);
        let x = lrng::normal_matrix(&mut rng, rows, 4, 0.0, 2.0);
        let via_eval = mlp.eval(mlp_store, &x);
        let mut tape = Tape::new();
        let xv = tape.input(x);
        let out = mlp.forward(&mut tape, mlp_store, xv);
        let via_tape = tape.value(out);
        for (a, b) in via_tape.as_slice().iter().zip(via_eval.as_slice()) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    /// Frozen forward produces the same values but never gradients.
    #[test]
    fn frozen_forward_matches_but_keeps_store_clean(seed in 0u64..100_000) {
        let mut rng = lrng::seeded(seed);
        let mut store = VarStore::new();
        let mlp = Mlp::new(&mut store, &mut rng, &[3, 4, 1], Activation::Tanh, Activation::None);
        let _warmup = lrng::normal_matrix(&mut rng, 5, 3, 0.0, 1.0);

        let mut other = VarStore::new();
        let probe = other.add(Matrix::ones(5, 3));

        let mut tape = Tape::new();
        let xv = tape.param(&other, probe);
        let out = mlp.forward_frozen(&mut tape, &store, xv);
        let loss = tape.mean_all(out);
        tape.backward(loss, &mut other);

        // Gradient flowed to the probe parameter…
        prop_assert!(other.grad(probe).sq_norm() > 0.0);
        // …and the frozen module's own store was never touched.
        prop_assert!(store.ids().all(|id| store.grad(id).sq_norm() == 0.0));
        // Values agree with eval.
        let expected = mlp.eval(&store, &Matrix::ones(5, 3));
        prop_assert!((tape.value(out).sum() - expected.sum()).abs() < 1e-9);
    }
}
