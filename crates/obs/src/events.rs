//! Typed training telemetry: the [`TrainObserver`] trait and its events.
//!
//! A fit emits, in order: one [`FitStartEvent`], the per-epoch autoencoder
//! summaries ([`AeEpochEvent`]), one [`SelectionEvent`] (the candidate
//! selection those autoencoders produced), one [`EpochEvent`] per
//! classifier epoch, and one [`FitEndEvent`]. Events borrow from the trainer's state (weight slices,
//! truth codes) — observers copy whatever they need to keep.
//!
//! The contract every emitter upholds: events are **read-only** with
//! respect to training state. Attaching any observer — or none — produces
//! bit-identical losses and fitted weights, because event payloads are
//! computed from values the training loop materializes anyway.

/// Per-epoch mean weight of the three true instance types hiding inside
/// the non-target anomaly candidate set (Fig. 5a). `NaN` when a type is
/// absent or ground truth is unavailable.
#[derive(Clone, Copy, Debug, Default)]
pub struct WeightMeans {
    /// Mean weight of inaccurately-reconstructed *normal* instances.
    pub normal: f64,
    /// Mean weight of hidden *target* anomalies.
    pub target: f64,
    /// Mean weight of *non-target* anomalies.
    pub non_target: f64,
}

/// Composition of the candidate set by ground truth (diagnostics).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CandidateComposition {
    /// Normal instances erroneously selected.
    pub normal: usize,
    /// Hidden target anomalies selected.
    pub target: usize,
    /// Non-target anomalies selected (the intended content).
    pub non_target: usize,
}

/// Summary statistics of the per-candidate OE weights `w(x)` (Eqs. 4–5).
///
/// The paper's robustness mechanism predicts the weight distribution
/// drifts upward for genuine non-target anomalies over training;
/// `top_q_mass` (the fraction of total weight mass held by the
/// highest-weighted 10% of candidates) makes that drift visible as a
/// single scalar per epoch.
#[derive(Clone, Copy, Debug, Default)]
pub struct WeightSummary {
    /// Number of candidate weights summarized.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Share of the total weight mass held by the top 10% (by weight) of
    /// candidates; `NaN` when the total mass is zero.
    pub top_q_mass: f64,
}

impl WeightSummary {
    /// Fraction of candidates counted as the "top" of the distribution.
    pub const TOP_Q: f64 = 0.10;

    /// Summarizes `weights` (empty input yields an all-`NaN` summary).
    pub fn from_weights(weights: &[f64]) -> Self {
        if weights.is_empty() {
            return Self {
                n: 0,
                mean: f64::NAN,
                min: f64::NAN,
                max: f64::NAN,
                top_q_mass: f64::NAN,
            };
        }
        let n = weights.len();
        let sum: f64 = weights.iter().sum();
        let min = weights.iter().copied().fold(f64::INFINITY, f64::min);
        let max = weights.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut sorted = weights.to_vec();
        sorted.sort_by(|a, b| b.partial_cmp(a).expect("NaN weight"));
        let top = ((Self::TOP_Q * n as f64).ceil() as usize).clamp(1, n);
        let top_sum: f64 = sorted[..top].iter().sum();
        Self {
            n,
            mean: sum / n as f64,
            min,
            max,
            top_q_mass: if sum > 0.0 { top_sum / sum } else { f64::NAN },
        }
    }
}

/// The additive loss decomposition of one classifier epoch:
/// `total ≈ ce + lambda1 * oe + lambda2 * re` (Eqs. 3, 6, 7, 8), each term
/// the epoch mean of its per-step partials. The identity holds to
/// floating-point reassociation error (≪ 1e-12 at these magnitudes); the
/// telemetry test suite asserts it.
#[derive(Clone, Copy, Debug, Default)]
pub struct LossDecomposition {
    /// Mean cross-entropy term `L_CE` over `D_L ∪ D_U^N` (Eq. 3).
    pub ce: f64,
    /// Mean weighted outlier-exposure term `L_OE` (Eq. 6), unscaled.
    pub oe: f64,
    /// Mean confidence regularizer `L_RE` (Eq. 7), unscaled.
    pub re: f64,
    /// Weight `λ₁` applied to `oe` in the total.
    pub lambda1: f64,
    /// Weight `λ₂` applied to `re` in the total.
    pub lambda2: f64,
    /// The optimized total `L_clf` (Eq. 8) as summed by the training loop.
    pub total: f64,
}

impl LossDecomposition {
    /// Recombines the terms: `ce + λ₁·oe + λ₂·re`. Differs from
    /// [`LossDecomposition::total`] only by floating-point reassociation.
    pub fn weighted_sum(&self) -> f64 {
        self.ce + self.lambda1 * self.oe + self.lambda2 * self.re
    }
}

/// Emitted once, before candidate selection.
#[derive(Clone, Copy, Debug)]
pub struct FitStartEvent {
    /// Model name (`"TargAD"`).
    pub model: &'static str,
    /// Labeled target anomalies `|D_L|`.
    pub n_labeled: usize,
    /// Unlabeled instances `|D_U|`.
    pub n_unlabeled: usize,
    /// Feature dimensionality.
    pub dims: usize,
    /// Target anomaly classes `m`.
    pub m: usize,
    /// Configured classifier epochs.
    pub epochs: usize,
    /// Runtime worker count.
    pub threads: usize,
    /// OE loss weight `λ₁`.
    pub lambda1: f64,
    /// RE loss weight `λ₂`.
    pub lambda2: f64,
}

/// Reconstruction-error distribution of one cluster autoencoder (Eq. 2).
#[derive(Clone, Copy, Debug)]
pub struct ClusterReconStats {
    /// Cluster index.
    pub cluster: usize,
    /// Cluster size (rows).
    pub size: usize,
    /// `[min, q25, median, q75, max]` of the cluster's reconstruction
    /// errors.
    pub quantiles: [f64; 5],
}

/// Emitted once, after candidate selection splits `D_U` into
/// `D_U^A` / `D_U^N`.
#[derive(Clone, Copy, Debug)]
pub struct SelectionEvent<'a> {
    /// Number of clusters used.
    pub k: usize,
    /// `|D_U^A|` — non-target anomaly candidates.
    pub n_anomaly: usize,
    /// `|D_U^N|` — normal candidates.
    pub n_normal: usize,
    /// Smallest reconstruction error admitted into `D_U^A` (the effective
    /// Eq. 2 threshold).
    pub threshold: f64,
    /// Per-cluster reconstruction-error quantiles.
    pub clusters: &'a [ClusterReconStats],
    /// Ground-truth composition of `D_U^A`; `None` without truth labels.
    pub composition: Option<CandidateComposition>,
}

/// Emitted once per autoencoder pretraining epoch (cluster-mean Eq. 1
/// loss).
#[derive(Clone, Copy, Debug)]
pub struct AeEpochEvent {
    /// Epoch index.
    pub epoch: usize,
    /// Eq. 1 loss averaged over all cluster autoencoders.
    pub mean_loss: f64,
}

/// Emitted once per classifier epoch.
#[derive(Clone, Copy, Debug)]
pub struct EpochEvent<'a> {
    /// Epoch index.
    pub epoch: usize,
    /// Optimizer steps taken this epoch.
    pub steps: usize,
    /// Additive loss decomposition of the epoch mean.
    pub loss: LossDecomposition,
    /// Summary of the per-candidate OE weights used this epoch.
    pub oe_weights: WeightSummary,
    /// The OE weights themselves (one per candidate, Eqs. 4–5).
    pub weights: &'a [f64],
    /// The Eq. 4 inputs `ε(x) = max_j p_j(x)` the weights were derived
    /// from; `None` at epoch 0 (Eq. 5 bootstrap) or when weight updating
    /// is disabled.
    pub eps: Option<&'a [f64]>,
    /// Mean weight per true candidate type (`NaN`s without ground truth).
    pub weight_means: WeightMeans,
    /// Candidates whose §III-C normality verdict flipped vs. the previous
    /// epoch (`D_U^A` ↔ `D_U^N` churn proxy); `None` when no classifier
    /// probabilities were computed this epoch.
    pub candidate_flips: Option<usize>,
    /// Optimizer steps whose pre-clip gradient norm exceeded the clip
    /// threshold this epoch.
    pub clip_activations: usize,
    /// The gradient-clip threshold in force.
    pub grad_clip: f64,
}

/// Emitted once, after the last classifier epoch.
#[derive(Clone, Copy, Debug)]
pub struct FitEndEvent<'a> {
    /// Classifier epochs completed.
    pub epochs: usize,
    /// Final per-candidate OE weights.
    pub final_weights: &'a [f64],
    /// True three-way code per candidate (0 normal / 1 target /
    /// 2 non-target); `None` without ground truth.
    pub truth_codes: Option<&'a [usize]>,
    /// Wall-clock duration of the whole fit, nanoseconds.
    pub wall_ns: u64,
}

/// A non-fatal anomaly in the telemetry or configuration path.
#[derive(Clone, Copy, Debug)]
pub struct WarningEvent<'a> {
    /// Stable machine-readable code.
    pub code: &'static str,
    /// Human-readable context.
    pub message: &'a str,
}

/// Receiver of structured training telemetry.
///
/// All methods default to no-ops, so observers implement only what they
/// consume. Implementations must treat events as read-only diagnostics;
/// the emitting trainer guarantees bit-identical training with any (or
/// no) observer attached.
pub trait TrainObserver {
    /// Fit is starting; dataset shape and configuration.
    fn on_fit_start(&mut self, _e: &FitStartEvent) {}
    /// Candidate selection finished.
    fn on_selection(&mut self, _e: &SelectionEvent<'_>) {}
    /// One autoencoder pretraining epoch finished.
    fn on_ae_epoch(&mut self, _e: &AeEpochEvent) {}
    /// One classifier epoch finished.
    fn on_epoch(&mut self, _e: &EpochEvent<'_>) {}
    /// Fit finished successfully.
    fn on_fit_end(&mut self, _e: &FitEndEvent<'_>) {}
    /// A non-fatal warning occurred.
    fn on_warning(&mut self, _e: &WarningEvent<'_>) {}
}

/// The do-nothing observer (telemetry-off fits).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl TrainObserver for NullObserver {}

/// Fans every event out to two observers, in order. Chain for more.
pub struct Tee<'a>(pub &'a mut dyn TrainObserver, pub &'a mut dyn TrainObserver);

impl TrainObserver for Tee<'_> {
    fn on_fit_start(&mut self, e: &FitStartEvent) {
        self.0.on_fit_start(e);
        self.1.on_fit_start(e);
    }
    fn on_selection(&mut self, e: &SelectionEvent<'_>) {
        self.0.on_selection(e);
        self.1.on_selection(e);
    }
    fn on_ae_epoch(&mut self, e: &AeEpochEvent) {
        self.0.on_ae_epoch(e);
        self.1.on_ae_epoch(e);
    }
    fn on_epoch(&mut self, e: &EpochEvent<'_>) {
        self.0.on_epoch(e);
        self.1.on_epoch(e);
    }
    fn on_fit_end(&mut self, e: &FitEndEvent<'_>) {
        self.0.on_fit_end(e);
        self.1.on_fit_end(e);
    }
    fn on_warning(&mut self, e: &WarningEvent<'_>) {
        self.0.on_warning(e);
        self.1.on_warning(e);
    }
}

/// An owned copy of one [`EpochEvent`] (see [`Recorder`]).
#[derive(Clone, Debug)]
pub struct EpochRecord {
    /// Epoch index.
    pub epoch: usize,
    /// Optimizer steps taken.
    pub steps: usize,
    /// Loss decomposition.
    pub loss: LossDecomposition,
    /// OE-weight summary.
    pub oe_weights: WeightSummary,
    /// The OE weights.
    pub weights: Vec<f64>,
    /// Eq. 4 inputs, when computed.
    pub eps: Option<Vec<f64>>,
    /// Per-truth-type weight means.
    pub weight_means: WeightMeans,
    /// Normality-verdict flips.
    pub candidate_flips: Option<usize>,
    /// Clip activations.
    pub clip_activations: usize,
}

/// An observer that stores owned copies of everything it receives — the
/// workhorse for tests and report generation.
#[derive(Debug, Default)]
pub struct Recorder {
    /// The fit-start event, if received.
    pub fit_start: Option<FitStartEvent>,
    /// Selection summary: `(k, n_anomaly, n_normal, threshold)`.
    pub selection: Option<(usize, usize, usize, f64)>,
    /// Per-cluster reconstruction stats.
    pub clusters: Vec<ClusterReconStats>,
    /// Candidate composition, when ground truth was available.
    pub composition: Option<CandidateComposition>,
    /// Mean AE loss per pretraining epoch.
    pub ae_loss: Vec<f64>,
    /// One record per classifier epoch.
    pub epochs: Vec<EpochRecord>,
    /// Final OE weights.
    pub final_weights: Vec<f64>,
    /// Truth codes, when available.
    pub truth_codes: Option<Vec<usize>>,
    /// Fit wall time in nanoseconds.
    pub wall_ns: u64,
    /// Warnings received.
    pub warnings: Vec<(&'static str, String)>,
}

impl Recorder {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TrainObserver for Recorder {
    fn on_fit_start(&mut self, e: &FitStartEvent) {
        self.fit_start = Some(*e);
    }

    fn on_selection(&mut self, e: &SelectionEvent<'_>) {
        self.selection = Some((e.k, e.n_anomaly, e.n_normal, e.threshold));
        self.clusters = e.clusters.to_vec();
        self.composition = e.composition;
    }

    fn on_ae_epoch(&mut self, e: &AeEpochEvent) {
        self.ae_loss.push(e.mean_loss);
    }

    fn on_epoch(&mut self, e: &EpochEvent<'_>) {
        self.epochs.push(EpochRecord {
            epoch: e.epoch,
            steps: e.steps,
            loss: e.loss,
            oe_weights: e.oe_weights,
            weights: e.weights.to_vec(),
            eps: e.eps.map(<[f64]>::to_vec),
            weight_means: e.weight_means,
            candidate_flips: e.candidate_flips,
            clip_activations: e.clip_activations,
        });
    }

    fn on_fit_end(&mut self, e: &FitEndEvent<'_>) {
        self.final_weights = e.final_weights.to_vec();
        self.truth_codes = e.truth_codes.map(<[usize]>::to_vec);
        self.wall_ns = e.wall_ns;
    }

    fn on_warning(&mut self, e: &WarningEvent<'_>) {
        self.warnings.push((e.code, e.message.to_string()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_summary_basics() {
        let s = WeightSummary::from_weights(&[0.0, 0.5, 1.0, 0.5]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 0.5).abs() < 1e-15);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 1.0);
        // top 10% of 4 weights = the single largest (1.0) over total 2.0.
        assert!((s.top_q_mass - 0.5).abs() < 1e-15);
    }

    #[test]
    fn weight_summary_empty_is_nan() {
        let s = WeightSummary::from_weights(&[]);
        assert_eq!(s.n, 0);
        assert!(s.mean.is_nan() && s.min.is_nan() && s.max.is_nan());
    }

    #[test]
    fn loss_decomposition_recombines() {
        let d = LossDecomposition {
            ce: 1.0,
            oe: 0.5,
            re: 0.25,
            lambda1: 2.0,
            lambda2: 4.0,
            total: 3.0,
        };
        assert_eq!(d.weighted_sum(), 3.0);
    }

    #[test]
    fn recorder_stores_epochs_and_tee_fans_out() {
        let weights = [0.25, 0.75];
        let e = EpochEvent {
            epoch: 0,
            steps: 3,
            loss: LossDecomposition::default(),
            oe_weights: WeightSummary::from_weights(&weights),
            weights: &weights,
            eps: None,
            weight_means: WeightMeans::default(),
            candidate_flips: Some(1),
            clip_activations: 2,
            grad_clip: 5.0,
        };
        let mut a = Recorder::new();
        let mut b = Recorder::new();
        let mut tee = Tee(&mut a, &mut b);
        tee.on_epoch(&e);
        tee.on_fit_end(&FitEndEvent {
            epochs: 1,
            final_weights: &weights,
            truth_codes: Some(&[2, 0]),
            wall_ns: 42,
        });
        for r in [&a, &b] {
            assert_eq!(r.epochs.len(), 1);
            assert_eq!(r.epochs[0].weights, vec![0.25, 0.75]);
            assert_eq!(r.final_weights, vec![0.25, 0.75]);
            assert_eq!(r.truth_codes.as_deref(), Some(&[2usize, 0][..]));
            assert_eq!(r.wall_ns, 42);
        }
    }
}
