//! Minimal JSON encoding helpers for the sinks (no external deps).

use std::fmt::Write as _;

/// Appends `s` as a JSON string literal (with quotes) to `out`.
pub fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number (non-finite values become `null`).
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Appends `vs` as a JSON array of numbers.
pub fn push_f64_slice(out: &mut String, vs: &[f64]) {
    out.push('[');
    for (i, v) in vs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_f64(out, *v);
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_formats() {
        let mut s = String::new();
        push_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
        s.clear();
        push_f64(&mut s, 0.5);
        assert_eq!(s, "0.5");
        s.clear();
        push_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
        s.clear();
        push_f64_slice(&mut s, &[1.0, f64::INFINITY]);
        assert_eq!(s, "[1,null]");
    }
}
