//! Labeled (per-tenant) metric families.
//!
//! The static registry in [`crate::metrics`] keys metrics by name alone;
//! multi-tenant serving needs `(name, tenant)` series. This module adds a
//! fixed-capacity labeled layer that keeps the same discipline as the
//! static registry: lock-free on the hot path, zero allocation after a
//! label's first touch.
//!
//! Design:
//!
//! - One process-global [`LabelSet`] ([`tenants`]) interns tenant names
//!   into dense slots. Interning takes a mutex once per *new* label;
//!   lookups are an acquire load plus a bounded scan over already
//!   published `&'static str` slots (label strings are leaked — tenant
//!   cardinality is capped, so the leak is bounded).
//! - A family ([`LabeledCounter`], [`LabeledGauge`], [`LabeledHistogram`],
//!   and [`crate::sketch::LabeledSketch`]) is a plain array of atomics
//!   indexed by [`LabelId`]. No per-family label table, no hashing.
//! - Cardinality is capped at [`MAX_LABELS`]. Labels beyond the cap clamp
//!   to a shared `_other` overflow slot and bump `obs.label_overflow`, so
//!   a tenant-name flood can neither allocate unboundedly nor lose
//!   traffic accounting entirely.
//!
//! All labeled writes are **ungated** serving truth (see
//! [`crate::metrics`]): the debug-telemetry gate does not apply.

use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::metrics::{bucket_of, HISTOGRAM_BUCKETS};

/// Maximum distinct labels a [`LabelSet`] interns; observations for
/// further labels clamp to the `_other` overflow slot.
pub const MAX_LABELS: usize = 64;

/// Number of value slots in a labeled family: one per internable label
/// plus the overflow slot.
pub const LABEL_SLOTS: usize = MAX_LABELS + 1;

/// Display name of the overflow slot.
pub const OVERFLOW_LABEL: &str = "_other";

/// Dense handle for an interned label. `Copy`, so request structs can
/// carry it across threads without touching the label string again.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LabelId(usize);

impl LabelId {
    /// The shared overflow slot ([`OVERFLOW_LABEL`]).
    pub const OVERFLOW: LabelId = LabelId(MAX_LABELS);

    /// Slot index into a family's value array.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }

    /// True when this is the overflow slot.
    #[inline]
    pub fn is_overflow(self) -> bool {
        self.0 == MAX_LABELS
    }
}

/// A fixed-capacity, lock-free-readable label interner.
pub struct LabelSet {
    /// Published label strings; slot `i` is non-null for `i < len`.
    /// Strings are leaked `Box<String>`s (thin pointers), so a published
    /// pointer is valid for the process lifetime.
    slots: [AtomicPtr<String>; MAX_LABELS],
    /// Number of published slots. Stored with `Release` after the slot
    /// pointer, loaded with `Acquire` before scanning.
    len: AtomicUsize,
    /// Serializes interning (writes only).
    register: Mutex<()>,
}

impl LabelSet {
    /// An empty label set.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const NULL: AtomicPtr<String> = AtomicPtr::new(std::ptr::null_mut());
        Self {
            slots: [NULL; MAX_LABELS],
            len: AtomicUsize::new(0),
            register: Mutex::new(()),
        }
    }

    /// Number of interned labels (excludes the overflow slot).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// True when no labels are interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The label string for `id`, or [`OVERFLOW_LABEL`] for the overflow
    /// slot. Returns `None` for slots not yet interned.
    pub fn name(&self, id: LabelId) -> Option<&'static str> {
        if id.is_overflow() {
            return Some(OVERFLOW_LABEL);
        }
        if id.0 >= self.len() {
            return None;
        }
        let ptr = self.slots[id.0].load(Ordering::Acquire);
        // Published before `len` was raised past this slot, so non-null.
        unsafe { ptr.as_ref() }.map(|s| s.as_str())
    }

    /// Finds an already interned label without interning. Allocation-free.
    #[inline]
    pub fn lookup(&self, label: &str) -> Option<LabelId> {
        let n = self.len.load(Ordering::Acquire);
        for i in 0..n {
            let ptr = self.slots[i].load(Ordering::Acquire);
            if unsafe { ptr.as_ref() }.is_some_and(|s| s == label) {
                return Some(LabelId(i));
            }
        }
        None
    }

    /// Interns `label`, returning its dense id. Beyond [`MAX_LABELS`]
    /// distinct labels, returns [`LabelId::OVERFLOW`] and bumps
    /// `obs.label_overflow`.
    pub fn intern(&self, label: &str) -> LabelId {
        if let Some(id) = self.lookup(label) {
            return id;
        }
        let _guard = self.register.lock().unwrap_or_else(|e| e.into_inner());
        // Double-check under the lock: a racing intern may have won.
        if let Some(id) = self.lookup(label) {
            return id;
        }
        let n = self.len.load(Ordering::Acquire);
        if n >= MAX_LABELS {
            crate::metrics::LABEL_OVERFLOW.inc_always();
            return LabelId::OVERFLOW;
        }
        let leaked: &'static mut String = Box::leak(Box::new(label.to_owned()));
        self.slots[n].store(leaked as *mut String, Ordering::Release);
        self.len.store(n + 1, Ordering::Release);
        LabelId(n)
    }

    /// All interned labels with their ids, in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (LabelId, &'static str)> + '_ {
        let n = self.len();
        (0..n).filter_map(move |i| self.name(LabelId(i)).map(|s| (LabelId(i), s)))
    }
}

impl Default for LabelSet {
    fn default() -> Self {
        Self::new()
    }
}

// `AtomicPtr<str>` to leaked immutable strings + atomics: safe to share.
unsafe impl Sync for LabelSet {}
unsafe impl Send for LabelSet {}

static TENANTS: LabelSet = LabelSet::new();

/// The process-global tenant label set shared by every labeled serve
/// family.
pub fn tenants() -> &'static LabelSet {
    &TENANTS
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);

/// A counter family over the tenant label set.
pub struct LabeledCounter {
    name: &'static str,
    values: [AtomicU64; LABEL_SLOTS],
}

impl LabeledCounter {
    /// A named family with every slot at zero.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            values: [ZERO; LABEL_SLOTS],
        }
    }

    /// The family's dot-path name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds one to the label's series (ungated, allocation-free).
    #[inline]
    pub fn inc(&self, id: LabelId) {
        self.add(id, 1);
    }

    /// Adds `n` to the label's series (ungated, allocation-free).
    #[inline]
    pub fn add(&self, id: LabelId, n: u64) {
        self.values[id.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of the label's series.
    pub fn get(&self, id: LabelId) -> u64 {
        self.values[id.index()].load(Ordering::Relaxed)
    }

    /// Zeroes every series (labels stay interned).
    pub fn reset(&self) {
        for v in &self.values {
            v.store(0, Ordering::Relaxed);
        }
    }
}

/// A gauge family over the tenant label set.
pub struct LabeledGauge {
    name: &'static str,
    values: [AtomicU64; LABEL_SLOTS],
}

impl LabeledGauge {
    /// A named family with every slot at zero.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            values: [ZERO; LABEL_SLOTS],
        }
    }

    /// The family's dot-path name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Overwrites the label's series (ungated, allocation-free).
    #[inline]
    pub fn set(&self, id: LabelId, v: u64) {
        self.values[id.index()].store(v, Ordering::Relaxed);
    }

    /// Current value of the label's series.
    pub fn get(&self, id: LabelId) -> u64 {
        self.values[id.index()].load(Ordering::Relaxed)
    }

    /// Zeroes every series (labels stay interned).
    pub fn reset(&self) {
        for v in &self.values {
            v.store(0, Ordering::Relaxed);
        }
    }
}

/// One label's histogram storage inside a [`LabeledHistogram`].
struct HistCell {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistCell {
    const fn new() -> Self {
        Self {
            buckets: [ZERO; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A histogram family over the tenant label set. Same power-of-4 bucket
/// layout as the static [`crate::metrics::Histogram`].
pub struct LabeledHistogram {
    name: &'static str,
    cells: [HistCell; LABEL_SLOTS],
}

impl LabeledHistogram {
    /// A named family with every cell empty.
    pub const fn new(name: &'static str) -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const CELL: HistCell = HistCell::new();
        Self {
            name,
            cells: [CELL; LABEL_SLOTS],
        }
    }

    /// The family's dot-path name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one sample into the label's series (ungated,
    /// allocation-free).
    #[inline]
    pub fn record(&self, id: LabelId, value: u64) {
        let cell = &self.cells[id.index()];
        cell.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        cell.count.fetch_add(1, Ordering::Relaxed);
        cell.sum.fetch_add(value, Ordering::Relaxed);
        cell.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Total samples in the label's series.
    pub fn count(&self, id: LabelId) -> u64 {
        self.cells[id.index()].count.load(Ordering::Relaxed)
    }

    /// Sum of samples in the label's series.
    pub fn sum(&self, id: LabelId) -> u64 {
        self.cells[id.index()].sum.load(Ordering::Relaxed)
    }

    /// Largest sample in the label's series since the last reset.
    pub fn max(&self, id: LabelId) -> u64 {
        self.cells[id.index()].max.load(Ordering::Relaxed)
    }

    /// Per-bucket counts of the label's series.
    pub fn buckets(&self, id: LabelId) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.cells[id.index()].buckets[i].load(Ordering::Relaxed))
    }

    /// Zeroes every cell (labels stay interned).
    pub fn reset(&self) {
        for c in &self.cells {
            c.reset();
        }
    }
}

// ---------------------------------------------------------------------------
// The labeled serve families.

/// `/score` requests completed, per tenant.
pub static TENANT_REQUESTS: LabeledCounter = LabeledCounter::new("serve.tenant.requests");
/// Rows scored, per tenant.
pub static TENANT_ROWS: LabeledCounter = LabeledCounter::new("serve.tenant.rows");
/// `/score` requests that failed (backpressure, bad input, unknown
/// tenant, budget), per tenant.
pub static TENANT_ERRORS: LabeledCounter = LabeledCounter::new("serve.tenant.errors");
/// End-to-end `/score` latency, per tenant, in nanoseconds.
pub static TENANT_REQUEST_NS: LabeledHistogram = LabeledHistogram::new("serve.tenant.request_ns");
/// Rows per request as submitted, per tenant.
pub static TENANT_REQUEST_ROWS: LabeledHistogram =
    LabeledHistogram::new("serve.tenant.request_rows");
/// Weight + plan bytes resident in the model store, per tenant.
pub static TENANT_RESIDENT_BYTES: LabeledGauge = LabeledGauge::new("serve.tenant.resident_bytes");

/// All labeled counter families, in reporting order.
pub static LABELED_COUNTERS: &[&LabeledCounter] = &[&TENANT_REQUESTS, &TENANT_ROWS, &TENANT_ERRORS];

/// All labeled gauge families, in reporting order.
pub static LABELED_GAUGES: &[&LabeledGauge] = &[&TENANT_RESIDENT_BYTES];

/// All labeled histogram families, in reporting order.
pub static LABELED_HISTOGRAMS: &[&LabeledHistogram] = &[&TENANT_REQUEST_NS, &TENANT_REQUEST_ROWS];

/// Zeroes every labeled family's values. Interned labels are preserved —
/// slots stay allocated to their tenants across bench phases.
pub fn reset_values() {
    for c in LABELED_COUNTERS {
        c.reset();
    }
    for g in LABELED_GAUGES {
        g.reset();
    }
    for h in LABELED_HISTOGRAMS {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_stable_and_lookup_free() {
        let set = LabelSet::new();
        let a = set.intern("alpha");
        let b = set.intern("beta");
        assert_ne!(a, b);
        assert_eq!(set.intern("alpha"), a);
        assert_eq!(set.lookup("beta"), Some(b));
        assert_eq!(set.lookup("gamma"), None);
        assert_eq!(set.name(a), Some("alpha"));
        assert_eq!(set.name(LabelId::OVERFLOW), Some(OVERFLOW_LABEL));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn cardinality_cap_clamps_to_overflow() {
        let set = LabelSet::new();
        let before = crate::metrics::LABEL_OVERFLOW.get();
        for i in 0..MAX_LABELS {
            let id = set.intern(&format!("tenant-{i}"));
            assert_eq!(id.index(), i);
            assert!(!id.is_overflow());
        }
        assert_eq!(set.len(), MAX_LABELS);
        // The 65th distinct label clamps; existing labels still resolve.
        let over = set.intern("one-too-many");
        assert!(over.is_overflow());
        assert!(crate::metrics::LABEL_OVERFLOW.get() > before);
        assert_eq!(set.len(), MAX_LABELS);
        assert_eq!(set.lookup("tenant-0"), Some(LabelId(0)));
        assert_eq!(set.intern("tenant-63").index(), 63);
        // Overflow observations share one slot instead of disappearing.
        static C: LabeledCounter = LabeledCounter::new("test.overflow_counter");
        C.inc(over);
        C.inc(set.intern("also-too-many"));
        assert_eq!(C.get(LabelId::OVERFLOW), 2);
    }

    #[test]
    fn concurrent_intern_agrees() {
        let set = LabelSet::new();
        let ids: Vec<LabelId> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8).map(|_| s.spawn(|| set.intern("shared"))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn families_accumulate_per_label() {
        static H: LabeledHistogram = LabeledHistogram::new("test.labeled_hist");
        let set = LabelSet::new();
        let a = set.intern("a");
        let b = set.intern("b");
        H.record(a, 5);
        H.record(a, 5);
        H.record(b, 1 << 20);
        assert_eq!(H.count(a), 2);
        assert_eq!(H.sum(a), 10);
        assert_eq!(H.buckets(a)[1], 2);
        assert_eq!(H.count(b), 1);
        assert_eq!(H.max(b), 1 << 20);
        H.reset();
        assert_eq!(H.count(a), 0);
        assert_eq!(H.max(b), 0);
    }
}
