//! Structured telemetry for the TargAD stack: metrics, events, profiling.
//!
//! Three layers, all read-only with respect to training state so enabling
//! them never changes a loss or a fitted weight:
//!
//! 1. **Metrics** ([`metrics`]) — a fixed registry of lock-free atomic
//!    counters, gauges, and fixed-bucket histograms covering the hot paths
//!    of the whole workspace (`gemm.kernel_dispatches`, `pool.jobs`,
//!    `tape.pool_hits`, `shards.reduced`, …). Increments are a relaxed
//!    atomic load plus (when enabled) a relaxed add: allocation-free
//!    always, and compiled to true no-ops without the `telemetry` feature.
//! 2. **Training events** ([`events`]) — the [`TrainObserver`] trait and
//!    its typed per-epoch events: loss decomposition `L_CE`/`L_OE`/`L_RE`
//!    vs. total, OE-weight drift summaries (Eqs. 4–5), candidate churn,
//!    gradient-clip activations, reconstruction-error quantiles per
//!    cluster autoencoder. Observers receive borrowed views; what they
//!    copy is up to them.
//! 3. **Phase profiling** ([`profile`]) — scoped span timers aggregated
//!    into a deterministic dot-path phase tree (`fit.select.ae`,
//!    `step.backward`, …), with a human-readable renderer and JSON export.
//! 4. **Serve observability** ([`labeled`], [`sketch`], [`trace`],
//!    [`prom`]) — per-tenant labeled metric families and score
//!    distribution sketches (ungated serving truth), request-scoped
//!    trace spans (gated, bit-identical when off), and Prometheus text
//!    exposition over the whole registry.
//!
//! [`sink::JsonlSink`] serializes the event stream to JSON Lines;
//! [`hub`] is a process-global sink used by the baseline epoch loops.
//!
//! # Enabling telemetry
//!
//! The runtime gate defaults to **off**; flip it with [`set_enabled`] or
//! the `TARGAD_OBS` environment variable (any non-empty value other than
//! `0`). With the gate off the per-call cost is one relaxed atomic load;
//! the counting-allocator tests in `crates/bench/tests/` prove that the
//! instrumented training paths still perform zero steady-state heap
//! allocations with the gate off *and* on.
//!
//! [`TrainObserver`]: events::TrainObserver

pub mod events;
mod json;
pub mod labeled;
pub mod metrics;
pub mod profile;
pub mod prom;
pub mod sink;
pub mod sketch;
pub mod trace;

pub use events::{
    AeEpochEvent, CandidateComposition, ClusterReconStats, EpochEvent, EpochRecord, FitEndEvent,
    FitStartEvent, LossDecomposition, NullObserver, Recorder, SelectionEvent, Tee, TrainObserver,
    WarningEvent, WeightMeans, WeightSummary,
};
pub use labeled::{LabelId, LabelSet, MAX_LABELS};
pub use profile::span;
pub use sink::hub;
pub use sketch::{ScoreSketch, SketchSnapshot};
pub use trace::{RequestTrace, ServePhase, TraceSpan};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// Environment variable consulted on first use: telemetry starts enabled
/// when set to a non-empty value other than `0`.
pub const OBS_ENV: &str = "TARGAD_OBS";

/// 0 = not yet initialized, 1 = disabled, 2 = enabled.
static GATE: AtomicU8 = AtomicU8::new(0);

/// Whether telemetry is currently enabled.
///
/// This is the single hot-path gate: a relaxed atomic load. The first call
/// initializes the gate from [`OBS_ENV`]. Without the `telemetry` feature
/// this is a compile-time `false`.
#[inline]
pub fn enabled() -> bool {
    #[cfg(not(feature = "telemetry"))]
    {
        false
    }
    #[cfg(feature = "telemetry")]
    {
        match GATE.load(Ordering::Relaxed) {
            2 => true,
            1 => false,
            _ => init_gate_from_env(),
        }
    }
}

#[cfg(feature = "telemetry")]
#[cold]
fn init_gate_from_env() -> bool {
    let on = std::env::var(OBS_ENV).is_ok_and(|v| !v.is_empty() && v != "0");
    set_enabled(on);
    on
}

/// Turns telemetry collection on or off at runtime (overrides [`OBS_ENV`]).
pub fn set_enabled(on: bool) {
    GATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// A recorded warning (see [`warn`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Warning {
    /// Stable machine-readable code, e.g. `runtime.threads_invalid`.
    pub code: &'static str,
    /// Human-readable context.
    pub message: String,
}

/// Warnings are rare by construction (misconfiguration paths only), so a
/// small bound keeps the buffer from growing without dropping anything in
/// practice.
const MAX_WARNINGS: usize = 64;

static WARNINGS: Mutex<Vec<Warning>> = Mutex::new(Vec::new());

/// Records a warning event: increments `obs.warnings`, buffers the warning
/// for [`take_warnings`], and prints it to stderr. Unlike metrics this is
/// **not** gated on [`enabled`] — warnings flag misconfiguration and must
/// surface even with telemetry off.
pub fn warn(code: &'static str, message: impl Into<String>) {
    let message = message.into();
    metrics::OBS_WARNINGS.force_inc();
    eprintln!("targad-obs warning [{code}]: {message}");
    let mut buf = WARNINGS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if buf.len() < MAX_WARNINGS {
        buf.push(Warning { code, message });
    }
}

/// Drains and returns all buffered warnings.
pub fn take_warnings() -> Vec<Warning> {
    std::mem::take(
        &mut WARNINGS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    )
}

/// Serializes tests that toggle the process-global gate or registries.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(feature = "telemetry")]
    fn gate_toggles() {
        let _g = test_guard();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }

    #[test]
    fn warnings_buffer_and_drain() {
        warn("test.code", "something odd");
        let drained = take_warnings();
        assert!(drained.iter().any(|w| w.code == "test.code"));
        // Second drain of the same warning is empty (modulo other tests).
        assert!(take_warnings().iter().all(|w| w.code != "test.code"));
    }
}
