//! The lock-free metrics registry.
//!
//! Every metric is a `static` declared in this module, so the registry is
//! fixed at compile time: no registration step, no locks, no allocation —
//! ever, on any path. Incrementing costs one relaxed atomic load (the
//! enablement gate) plus, when enabled, one relaxed `fetch_add`. Without
//! the crate's `telemetry` feature the bodies compile away entirely.
//!
//! Two write disciplines coexist:
//!
//! - **Gated** ([`Counter::add`], [`Gauge::set`], [`Histogram::record`]) —
//!   debug/perf telemetry that respects the [`crate::enabled`] switch.
//!   Training and kernel instrumentation uses these.
//! - **Ungated** ([`Counter::add_always`], [`Gauge::set_always`],
//!   [`Histogram::record_always`]) — *serving truth*: request, batch, and
//!   store accounting that an operator's `/metrics` scrape must reflect
//!   whether or not the debug gate is up. The serve layer writes its
//!   `serve.*` / `store.*` metrics through these, so `BatcherStats`,
//!   tests, and the exposition endpoints all read one set of numbers.
//!
//! [`snapshot`] walks the fixed metric lists into owned name/value pairs
//! for reporting; [`reset_all`] zeroes everything (bench/test isolation),
//! including the labeled families ([`crate::labeled`]) and score sketches
//! ([`crate::sketch`]).

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event count.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// A named counter starting at zero.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// The metric's dot-path name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds one when telemetry is enabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` when telemetry is enabled.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "telemetry")]
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = n;
    }

    /// Adds one regardless of the enablement gate (warning paths).
    #[inline]
    pub(crate) fn force_inc(&self) {
        #[cfg(feature = "telemetry")]
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds one regardless of the enablement gate (serving truth).
    #[inline]
    pub fn inc_always(&self) {
        self.add_always(1);
    }

    /// Adds `n` regardless of the enablement gate (serving truth).
    ///
    /// Serve- and store-layer accounting goes through this path so the
    /// `/metrics` endpoints reflect real traffic even when the debug
    /// telemetry gate is down.
    #[inline]
    pub fn add_always(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-written value (worker counts, sizes). Stored as `u64`.
pub struct Gauge {
    name: &'static str,
    value: AtomicU64,
}

impl Gauge {
    /// A named gauge starting at zero.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// The metric's dot-path name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Overwrites the value when telemetry is enabled.
    #[inline]
    pub fn set(&self, v: u64) {
        #[cfg(feature = "telemetry")]
        if crate::enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = v;
    }

    /// Overwrites the value regardless of the enablement gate (serving
    /// truth).
    #[inline]
    pub fn set_always(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of histogram buckets. Bucket `i` counts samples in
/// `[4^i, 4^(i+1))` of the recorded unit (nanoseconds for the `_ns`
/// metrics); the last bucket is unbounded above.
pub const HISTOGRAM_BUCKETS: usize = 16;

/// A fixed-bucket log-scale histogram (power-of-4 bucket edges).
///
/// The fixed layout keeps recording allocation-free: bucket selection is a
/// leading-zeros computation and one atomic add.
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// Bucket index of `value`: `floor(log4(value))`, clamped to the range.
/// Shared by [`Histogram`] and the labeled histogram cells.
#[inline]
pub(crate) fn bucket_of(value: u64) -> usize {
    let bits = 64 - value.leading_zeros() as usize; // 0 for value == 0
    (bits.saturating_sub(1) / 2).min(HISTOGRAM_BUCKETS - 1)
}

impl Histogram {
    /// A named histogram with empty buckets.
    pub const fn new(name: &'static str) -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            name,
            buckets: [ZERO; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// The metric's dot-path name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Bucket index of `value`: `floor(log4(value))`, clamped to the range.
    #[inline]
    fn bucket_of(value: u64) -> usize {
        bucket_of(value)
    }

    /// Records one sample when telemetry is enabled.
    #[inline]
    pub fn record(&self, value: u64) {
        #[cfg(feature = "telemetry")]
        if crate::enabled() {
            self.record_always(value);
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = value;
    }

    /// Records one sample regardless of the enablement gate (serving
    /// truth).
    #[inline]
    pub fn record_always(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample recorded since the last reset (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Per-bucket sample counts.
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Resets all buckets and totals to zero.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// The registry: every well-known metric in the workspace.

/// Blocked-GEMM driver dispatches (packed path).
pub static GEMM_KERNEL_DISPATCHES: Counter = Counter::new("gemm.kernel_dispatches");
/// Scalar-loop GEMM dispatches (problems too tiny even for register
/// tiling: output area below one register tile).
pub static GEMM_NAIVE_DISPATCHES: Counter = Counter::new("gemm.naive_dispatches");
/// Packing-free register-tiled small-GEMM dispatches (below the blocked
/// kernel's FLOP threshold but at least one register tile of output —
/// the training-shape fast path).
pub static GEMM_SMALL_DISPATCHES: Counter = Counter::new("gemm.small_dispatches");
/// f32 inference-kernel calls that ran the AVX2+FMA micro-tile.
pub static GEMM_F32_SIMD_DISPATCHES: Counter = Counter::new("gemm.f32_simd_dispatches");
/// f32 inference-kernel calls that ran the portable scalar micro-kernel.
pub static GEMM_F32_SCALAR_DISPATCHES: Counter = Counter::new("gemm.f32_scalar_dispatches");
/// Multi-worker jobs dispatched through the runtime pool.
pub static POOL_JOBS: Counter = Counter::new("pool.jobs");
/// Parallel requests that ran inline because the pool was busy or too small.
pub static POOL_INLINE_RUNS: Counter = Counter::new("pool.inline_runs");
/// Tape buffer-pool takes served from the free list.
pub static TAPE_POOL_HITS: Counter = Counter::new("tape.pool_hits");
/// Tape buffer-pool takes that had to allocate (warm-up only, in steady
/// state this stays flat).
pub static TAPE_POOL_MISSES: Counter = Counter::new("tape.pool_misses");
/// Gradient shards reduced (in ascending shard order) by `ShardedStep`.
pub static SHARDS_REDUCED: Counter = Counter::new("shards.reduced");
/// Optimizer steps whose gradient norm exceeded the clip threshold.
pub static CLIP_ACTIVATIONS: Counter = Counter::new("optim.clip_activations");
/// Training epochs observed across all models (TargAD + baselines).
pub static TRAIN_EPOCHS: Counter = Counter::new("train.epochs");
/// Warnings emitted via [`crate::warn`].
pub static OBS_WARNINGS: Counter = Counter::new("obs.warnings");
/// Scoring batches run through the `ScoreEngine` inference path.
pub static SCORE_BATCHES: Counter = Counter::new("score.batches");
/// Rows scored by the `ScoreEngine` inference path.
pub static SCORE_ROWS: Counter = Counter::new("score.rows");
/// Row blocks streamed by the `ScoreEngine` (fixed-size, worker-invariant).
pub static SCORE_BLOCKS: Counter = Counter::new("score.blocks");
/// Scoring batches run through the engine's f32 (reduced-precision) path.
pub static SCORE_F32_BATCHES: Counter = Counter::new("score.f32_batches");

/// Scoring requests accepted by the serve layer.
pub static SERVE_REQUESTS: Counter = Counter::new("serve.requests");
/// Rows scored through the serve layer.
pub static SERVE_ROWS: Counter = Counter::new("serve.rows");
/// Coalesced micro-batches executed by the serve batcher.
pub static SERVE_BATCHES: Counter = Counter::new("serve.batches");
/// Requests rejected with backpressure (queue at capacity).
pub static SERVE_REJECTED: Counter = Counter::new("serve.rejected");
/// Model registry hot-swaps performed.
pub static SERVE_SWAPS: Counter = Counter::new("serve.swaps");
/// Labeled-metric observations that fell into the `_other` overflow slot
/// because the label set hit its cardinality cap.
pub static LABEL_OVERFLOW: Counter = Counter::new("obs.label_overflow");

/// Borrowed (shared-storage) matrices promoted to owned storage by a
/// mutating call (copy-on-write). Zero on the scoring hot path — weights
/// loaded from an mmap'ed snapshot are only ever read.
pub static MATRIX_COW_PROMOTIONS: Counter = Counter::new("matrix.cow_promotions");

/// Tenant lookups served by an already-resident engine in the model store
/// LRU.
pub static STORE_CACHE_HITS: Counter = Counter::new("store.cache_hits");
/// Tenant lookups that missed the resident set (faulted in from disk or
/// rejected).
pub static STORE_CACHE_MISSES: Counter = Counter::new("store.cache_misses");
/// Resident engines evicted by the byte-budgeted LRU to make room.
pub static STORE_EVICTIONS: Counter = Counter::new("store.evictions");
/// v3 snapshot loads served by the zero-copy mmap path.
pub static STORE_MMAP_LOADS: Counter = Counter::new("store.mmap_loads");
/// v3 snapshot loads served by the buffered (single-read, aligned-copy)
/// fallback path.
pub static STORE_BUFFERED_LOADS: Counter = Counter::new("store.buffered_loads");

/// Worker count of the most recent multi-worker pool dispatch.
pub static POOL_WORKERS: Gauge = Gauge::new("pool.workers");

/// Detected `avx2` CPU feature (0/1), recorded at f32-kernel dispatch so
/// metric snapshots identify the host's capabilities.
pub static CPU_AVX2: Gauge = Gauge::new("cpu.avx2");
/// Detected `fma` CPU feature (0/1), recorded at f32-kernel dispatch.
pub static CPU_FMA: Gauge = Gauge::new("cpu.fma");
/// 1 when the process's cached f32 dispatch decision is the AVX2+FMA
/// micro-kernel, 0 when it is the scalar fallback (feature missing or
/// `TARGAD_SIMD=off`).
pub static CPU_F32_KERNEL_SIMD: Gauge = Gauge::new("cpu.f32_kernel_simd");

/// Rows currently queued in the serve micro-batcher.
pub static SERVE_QUEUE_DEPTH: Gauge = Gauge::new("serve.queue_depth");
/// Generation of the model currently installed in the serve registry.
pub static SERVE_GENERATION: Gauge = Gauge::new("serve.generation");

/// Bytes of scratch capacity held by the most recently used `ScoreEngine`
/// buffer pool (ping-pong scratch plus block result slots).
pub static SCORE_ENGINE_POOL_BYTES: Gauge = Gauge::new("score.engine_pool_bytes");

/// Weight + plan bytes currently resident across all tenants in the model
/// store LRU (the quantity capped by `model_budget_bytes`).
pub static STORE_RESIDENT_BYTES: Gauge = Gauge::new("store.resident_bytes");

/// Time the dispatching thread spent waiting for pool workers to finish a
/// round after completing its own share, in nanoseconds.
pub static POOL_QUEUE_WAIT_NS: Histogram = Histogram::new("pool.queue_wait_ns");

/// Rows per coalesced serve micro-batch (fill achieved by the
/// max-wait/max-batch policy).
pub static SERVE_BATCH_FILL: Histogram = Histogram::new("serve.batch_fill");
/// Time a request waited in the serve queue before its batch started, in
/// nanoseconds.
pub static SERVE_QUEUE_WAIT_NS: Histogram = Histogram::new("serve.queue_wait_ns");
/// Wall time of one serve micro-batch scoring pass, in nanoseconds.
pub static SERVE_BATCH_SERVICE_NS: Histogram = Histogram::new("serve.batch_service_ns");
/// End-to-end wall time of one `/score` request (submit to reply), in
/// nanoseconds.
pub static SERVE_REQUEST_NS: Histogram = Histogram::new("serve.request_ns");
/// Gap between consecutive request arrivals at the micro-batcher, in
/// nanoseconds (feeds the workload-profile recorder).
pub static SERVE_ARRIVAL_GAP_NS: Histogram = Histogram::new("serve.arrival_gap_ns");
/// Rows carried by one `/score` request (as submitted, before coalescing).
pub static SERVE_REQUEST_ROWS: Histogram = Histogram::new("serve.request_rows");

/// Wall time to admit one tenant into the model store LRU (load from disk,
/// rebuild the engine, warm the f32 plan when configured), in nanoseconds.
pub static STORE_ADMIT_NS: Histogram = Histogram::new("store.admit_ns");

/// All registered counters, in reporting order.
pub static COUNTERS: &[&Counter] = &[
    &GEMM_KERNEL_DISPATCHES,
    &GEMM_NAIVE_DISPATCHES,
    &GEMM_SMALL_DISPATCHES,
    &GEMM_F32_SIMD_DISPATCHES,
    &GEMM_F32_SCALAR_DISPATCHES,
    &POOL_JOBS,
    &POOL_INLINE_RUNS,
    &TAPE_POOL_HITS,
    &TAPE_POOL_MISSES,
    &SHARDS_REDUCED,
    &CLIP_ACTIVATIONS,
    &TRAIN_EPOCHS,
    &OBS_WARNINGS,
    &SCORE_BATCHES,
    &SCORE_ROWS,
    &SCORE_BLOCKS,
    &SCORE_F32_BATCHES,
    &SERVE_REQUESTS,
    &SERVE_ROWS,
    &SERVE_BATCHES,
    &SERVE_REJECTED,
    &SERVE_SWAPS,
    &LABEL_OVERFLOW,
    &MATRIX_COW_PROMOTIONS,
    &STORE_CACHE_HITS,
    &STORE_CACHE_MISSES,
    &STORE_EVICTIONS,
    &STORE_MMAP_LOADS,
    &STORE_BUFFERED_LOADS,
];

/// All registered gauges, in reporting order.
pub static GAUGES: &[&Gauge] = &[
    &POOL_WORKERS,
    &CPU_AVX2,
    &CPU_FMA,
    &CPU_F32_KERNEL_SIMD,
    &SCORE_ENGINE_POOL_BYTES,
    &STORE_RESIDENT_BYTES,
    &SERVE_QUEUE_DEPTH,
    &SERVE_GENERATION,
];

/// All registered histograms, in reporting order.
pub static HISTOGRAMS: &[&Histogram] = &[
    &POOL_QUEUE_WAIT_NS,
    &SERVE_BATCH_FILL,
    &SERVE_QUEUE_WAIT_NS,
    &SERVE_BATCH_SERVICE_NS,
    &SERVE_REQUEST_NS,
    &SERVE_ARRIVAL_GAP_NS,
    &SERVE_REQUEST_ROWS,
    &STORE_ADMIT_NS,
];

/// One metric's current value in a [`snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram totals and buckets.
    Histogram {
        /// Total samples.
        count: u64,
        /// Sum of samples.
        sum: u64,
        /// Largest sample since the last reset (0 when empty).
        max: u64,
        /// Per-bucket counts.
        buckets: [u64; HISTOGRAM_BUCKETS],
    },
}

/// Current values of every registered metric, in registry order.
pub fn snapshot() -> Vec<(&'static str, MetricValue)> {
    let mut out = Vec::with_capacity(COUNTERS.len() + GAUGES.len() + HISTOGRAMS.len());
    for c in COUNTERS {
        out.push((c.name(), MetricValue::Counter(c.get())));
    }
    for g in GAUGES {
        out.push((g.name(), MetricValue::Gauge(g.get())));
    }
    for h in HISTOGRAMS {
        out.push((
            h.name(),
            MetricValue::Histogram {
                count: h.count(),
                sum: h.sum(),
                max: h.max(),
                buckets: h.buckets(),
            },
        ));
    }
    out
}

/// Resets every registered metric to zero, including the labeled metric
/// families and score sketches (label interning is preserved — only
/// values are cleared).
pub fn reset_all() {
    for c in COUNTERS {
        c.reset();
    }
    for g in GAUGES {
        g.reset();
    }
    for h in HISTOGRAMS {
        h.reset();
    }
    crate::labeled::reset_values();
    crate::sketch::reset_values();
}

/// The metrics snapshot as a JSON object string.
pub fn snapshot_json() -> String {
    let mut out = String::from("{");
    for (i, (name, value)) in snapshot().into_iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                out.push_str(&format!("\"{name}\": {v}"));
            }
            MetricValue::Histogram {
                count,
                sum,
                max,
                buckets,
            } => {
                let b: Vec<String> = buckets.iter().map(u64::to_string).collect();
                out.push_str(&format!(
                    "\"{name}\": {{\"count\": {count}, \"sum\": {sum}, \"max\": {max}, \"buckets\": [{}]}}",
                    b.join(", ")
                ));
            }
        }
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(feature = "telemetry")]
    fn counter_respects_gate() {
        let _g = crate::test_guard();
        static C: Counter = Counter::new("test.counter");
        crate::set_enabled(false);
        C.inc();
        assert_eq!(C.get(), 0);
        crate::set_enabled(true);
        C.inc();
        C.add(4);
        assert_eq!(C.get(), 5);
        C.reset();
        assert_eq!(C.get(), 0);
        crate::set_enabled(false);
    }

    #[test]
    #[cfg(feature = "telemetry")]
    fn gauge_set_and_reset() {
        let _g = crate::test_guard();
        static G: Gauge = Gauge::new("test.gauge");
        crate::set_enabled(true);
        G.set(17);
        assert_eq!(G.get(), 17);
        G.reset();
        assert_eq!(G.get(), 0);
        crate::set_enabled(false);
    }

    #[test]
    fn histogram_bucket_edges() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(3), 0);
        assert_eq!(Histogram::bucket_of(4), 1);
        assert_eq!(Histogram::bucket_of(15), 1);
        assert_eq!(Histogram::bucket_of(16), 2);
        assert_eq!(Histogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_bucket_power_of_two_sweep() {
        // Every power of two lands in bucket floor(exp / 2); the value just
        // below it (2^exp - 1) lands in floor((exp - 1) / 2). The clamp
        // kicks in once floor(exp / 2) reaches the last bucket.
        for exp in 0..64u32 {
            let v = 1u64 << exp;
            let expect = ((exp as usize) / 2).min(HISTOGRAM_BUCKETS - 1);
            assert_eq!(Histogram::bucket_of(v), expect, "2^{exp}");
            if exp > 0 {
                let below = v - 1;
                let expect_below = ((exp as usize - 1) / 2).min(HISTOGRAM_BUCKETS - 1);
                assert_eq!(Histogram::bucket_of(below), expect_below, "2^{exp}-1");
            }
        }
        // Exact power-of-4 edges: 4^i is the first value of bucket i.
        for i in 0..HISTOGRAM_BUCKETS {
            let edge = 1u64 << (2 * i);
            assert_eq!(Histogram::bucket_of(edge), i);
            assert_eq!(Histogram::bucket_of(edge - 1), i.saturating_sub(1));
        }
    }

    #[test]
    fn histogram_snapshot_under_concurrent_record() {
        // Writers hammer one histogram (through the ungated path, so the
        // test is gate-independent) while a reader snapshots it. Every
        // observed snapshot must be internally plausible: bucket totals
        // never exceed a later count ceiling, sum consistent with the
        // recorded constant value, and the final state exact.
        static H: Histogram = Histogram::new("test.concurrent_histogram");
        H.reset();
        const WRITERS: usize = 4;
        const PER_WRITER: u64 = 20_000;
        const VALUE: u64 = 5; // bucket 1
        std::thread::scope(|s| {
            for _ in 0..WRITERS {
                s.spawn(|| {
                    for _ in 0..PER_WRITER {
                        H.record_always(VALUE);
                    }
                });
            }
            s.spawn(|| {
                for _ in 0..200 {
                    let count = H.count();
                    let sum = H.sum();
                    let buckets = H.buckets();
                    let total = WRITERS as u64 * PER_WRITER;
                    assert!(count <= total);
                    assert!(sum <= total * VALUE);
                    assert!(buckets[1] <= total);
                    for (i, b) in buckets.iter().enumerate() {
                        if i != 1 {
                            assert_eq!(*b, 0, "stray sample in bucket {i}");
                        }
                    }
                    std::hint::spin_loop();
                }
            });
        });
        let total = WRITERS as u64 * PER_WRITER;
        assert_eq!(H.count(), total);
        assert_eq!(H.sum(), total * VALUE);
        assert_eq!(H.buckets()[1], total);
        assert_eq!(H.max(), VALUE);
        H.reset();
        assert_eq!(H.max(), 0);
    }

    #[test]
    fn ungated_paths_ignore_gate() {
        static C: Counter = Counter::new("test.always_counter");
        static G: Gauge = Gauge::new("test.always_gauge");
        static H: Histogram = Histogram::new("test.always_histogram");
        // No gate manipulation at all: _always paths must work even when
        // telemetry was never switched on (and without the feature).
        C.inc_always();
        C.add_always(2);
        assert_eq!(C.get(), 3);
        G.set_always(9);
        assert_eq!(G.get(), 9);
        H.record_always(1 << 10);
        assert_eq!(H.count(), 1);
        assert_eq!(H.sum(), 1 << 10);
        assert_eq!(H.max(), 1 << 10);
        C.reset();
        G.reset();
        H.reset();
    }

    #[test]
    #[cfg(feature = "telemetry")]
    fn histogram_records_and_resets() {
        let _g = crate::test_guard();
        static H: Histogram = Histogram::new("test.histogram");
        crate::set_enabled(true);
        H.record(1);
        H.record(5);
        H.record(5);
        assert_eq!(H.count(), 3);
        assert_eq!(H.sum(), 11);
        let b = H.buckets();
        assert_eq!(b[0], 1);
        assert_eq!(b[1], 2);
        H.reset();
        assert_eq!(H.count(), 0);
        crate::set_enabled(false);
    }

    #[test]
    fn snapshot_covers_registry() {
        let snap = snapshot();
        assert_eq!(snap.len(), COUNTERS.len() + GAUGES.len() + HISTOGRAMS.len());
        assert!(snap.iter().any(|(n, _)| *n == "gemm.kernel_dispatches"));
        let json = snapshot_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"pool.jobs\""));
    }
}
