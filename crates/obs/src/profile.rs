//! The phase profiler: scoped span timers over a fixed dot-path tree.
//!
//! Like the metrics registry, the set of phases is a compile-time list of
//! statics, so recording a span is allocation-free: an `Instant::now` pair
//! and two relaxed atomic adds (nothing at all when telemetry is
//! disabled). The dot-separated paths (`fit.select.ae`, `step.backward`)
//! define a deterministic tree — structure fixed by the code, only the
//! aggregated durations vary — rendered by [`render_tree`] or exported by
//! [`tree_json`].
//!
//! Spans may be entered concurrently from pool workers (the
//! `step.forward` / `step.backward` spans run on every worker); each
//! completion is a single atomic accumulation, so aggregation is
//! race-free and the reported totals are *CPU* time summed across
//! workers, not wall-clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Aggregated timings of one named phase.
pub struct PhaseTimer {
    path: &'static str,
    total_ns: AtomicU64,
    count: AtomicU64,
}

impl PhaseTimer {
    /// A phase identified by a dot-separated path.
    pub const fn new(path: &'static str) -> Self {
        Self {
            path,
            total_ns: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// The phase's dot-path.
    pub fn path(&self) -> &'static str {
        self.path
    }

    /// Adds one completed span of `ns` nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Accumulated nanoseconds across all spans.
    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }

    /// Number of completed spans.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Resets the accumulated time and count.
    pub fn reset(&self) {
        self.total_ns.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
    }
}

/// An in-flight span; records into its timer on drop. Obtained from
/// [`span`]; holds no start time (and records nothing) when telemetry is
/// disabled.
pub struct SpanGuard<'a> {
    timer: &'a PhaseTimer,
    start: Option<Instant>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.timer.record_ns(ns);
        }
    }
}

/// Opens a span on `timer`; the elapsed time is recorded when the returned
/// guard drops. When telemetry is disabled this is a no-op guard (no clock
/// read, no atomics).
#[inline]
pub fn span(timer: &PhaseTimer) -> SpanGuard<'_> {
    SpanGuard {
        timer,
        start: crate::enabled().then(Instant::now),
    }
}

// ---------------------------------------------------------------------------
// The fixed phase registry.

/// Whole `TargAd::fit` run.
pub static PHASE_FIT: PhaseTimer = PhaseTimer::new("fit");
/// Candidate selection (Lines 1–7 of Algorithm 1).
pub static PHASE_SELECT: PhaseTimer = PhaseTimer::new("fit.select");
/// k-means clustering (plus the elbow sweep when `k` is unset).
pub static PHASE_SELECT_KMEANS: PhaseTimer = PhaseTimer::new("fit.select.kmeans");
/// Per-cluster autoencoder training (Eq. 1).
pub static PHASE_SELECT_AE: PhaseTimer = PhaseTimer::new("fit.select.ae");
/// Reconstruction-error scoring and the top-α% ranking (Eq. 2).
pub static PHASE_SELECT_RANK: PhaseTimer = PhaseTimer::new("fit.select.rank");
/// Classifier training (Lines 8–16).
pub static PHASE_CLF: PhaseTimer = PhaseTimer::new("fit.clf");
/// One classifier epoch.
pub static PHASE_CLF_EPOCH: PhaseTimer = PhaseTimer::new("fit.clf.epoch");
/// One whole `ShardedStep` gradient accumulation (all shards).
pub static PHASE_STEP: PhaseTimer = PhaseTimer::new("step");
/// Shard forward-graph construction inside `ShardedStep` (any model).
pub static PHASE_STEP_FORWARD: PhaseTimer = PhaseTimer::new("step.forward");
/// Shard backward pass inside `ShardedStep`.
pub static PHASE_STEP_BACKWARD: PhaseTimer = PhaseTimer::new("step.backward");
/// Gradient-GEMM share of one backward sweep (`MatMul` / fused `Dense`
/// nodes), bucketed per sweep by the tape itself.
pub static PHASE_STEP_BACKWARD_GEMM: PhaseTimer = PhaseTimer::new("step.backward.gemm");
/// Elementwise/reduction share of one backward sweep (every non-GEMM
/// node: activations, broadcasts, softmax, sums).
pub static PHASE_STEP_BACKWARD_ELEM: PhaseTimer = PhaseTimer::new("step.backward.elementwise");
/// Fixed-order gradient reduction inside `ShardedStep`.
pub static PHASE_STEP_REDUCE: PhaseTimer = PhaseTimer::new("step.reduce");
/// Gradient clip + optimizer apply (core training loops).
pub static PHASE_STEP_APPLY: PhaseTimer = PhaseTimer::new("step.apply");
/// One `ScoreEngine` batch (all row blocks of one scoring call).
pub static PHASE_INFER: PhaseTimer = PhaseTimer::new("infer");

/// Every phase, in registry (= deterministic reporting) order. Parents
/// precede children.
pub static PHASES: &[&PhaseTimer] = &[
    &PHASE_FIT,
    &PHASE_SELECT,
    &PHASE_SELECT_KMEANS,
    &PHASE_SELECT_AE,
    &PHASE_SELECT_RANK,
    &PHASE_CLF,
    &PHASE_CLF_EPOCH,
    &PHASE_STEP,
    &PHASE_STEP_FORWARD,
    &PHASE_STEP_BACKWARD,
    &PHASE_STEP_BACKWARD_GEMM,
    &PHASE_STEP_BACKWARD_ELEM,
    &PHASE_STEP_REDUCE,
    &PHASE_STEP_APPLY,
    &PHASE_INFER,
];

/// Resets every registered phase timer.
pub fn reset_all() {
    for p in PHASES {
        p.reset();
    }
}

/// One node of the aggregated phase tree.
#[derive(Clone, Debug)]
pub struct PhaseNode {
    /// Full dot-path, e.g. `fit.select.ae`.
    pub path: &'static str,
    /// Accumulated nanoseconds (summed across workers for shared spans).
    pub total_ns: u64,
    /// Completed span count.
    pub count: u64,
    /// Nesting depth (number of dots in the path).
    pub depth: usize,
}

/// The current phase aggregates as a flat pre-order list (parents before
/// children — the registry order), skipping phases that never ran.
pub fn tree() -> Vec<PhaseNode> {
    PHASES
        .iter()
        .filter(|p| p.count() > 0)
        .map(|p| PhaseNode {
            path: p.path(),
            total_ns: p.total_ns(),
            count: p.count(),
            depth: p.path().matches('.').count(),
        })
        .collect()
}

/// Renders the phase tree as an indented human-readable summary:
///
/// ```text
/// fit                 1x   412.3 ms
///   select            1x   198.7 ms
///     ae              4x   180.2 ms
/// ```
pub fn render_tree() -> String {
    let nodes = tree();
    if nodes.is_empty() {
        return String::from("(no phases recorded)\n");
    }
    let name_width = nodes
        .iter()
        .map(|n| 2 * n.depth + n.path.rsplit('.').next().unwrap_or(n.path).len())
        .max()
        .unwrap_or(0)
        .max(8);
    let mut out = String::from("phase tree (CPU time, summed across workers):\n");
    for n in &nodes {
        let leaf = n.path.rsplit('.').next().unwrap_or(n.path);
        let label = format!("{}{}", "  ".repeat(n.depth), leaf);
        let ms = n.total_ns as f64 / 1e6;
        out.push_str(&format!(
            "  {label:<name_width$}  {:>8}x  {ms:>10.3} ms\n",
            n.count
        ));
    }
    out
}

/// The phase tree as a JSON array string (pre-order, deterministic).
pub fn tree_json() -> String {
    let mut out = String::from("[");
    for (i, n) in tree().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"path\": \"{}\", \"count\": {}, \"total_ns\": {}}}",
            n.path, n.count, n.total_ns
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(feature = "telemetry")]
    fn span_records_only_when_enabled() {
        let _g = crate::test_guard();
        static T: PhaseTimer = PhaseTimer::new("test.span");
        crate::set_enabled(false);
        drop(span(&T));
        assert_eq!(T.count(), 0);
        crate::set_enabled(true);
        drop(span(&T));
        assert_eq!(T.count(), 1);
        T.reset();
        crate::set_enabled(false);
    }

    #[test]
    #[cfg(feature = "telemetry")]
    fn tree_skips_idle_phases_and_orders_parents_first() {
        let _g = crate::test_guard();
        reset_all();
        crate::set_enabled(true);
        drop(span(&PHASE_FIT));
        drop(span(&PHASE_SELECT));
        crate::set_enabled(false);
        let t = tree();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].path, "fit");
        assert_eq!(t[1].path, "fit.select");
        assert_eq!(t[1].depth, 1);
        let rendered = render_tree();
        assert!(rendered.contains("fit"));
        assert!(rendered.contains("select"));
        let json = tree_json();
        assert!(json.contains("\"path\": \"fit.select\""));
        reset_all();
    }

    #[test]
    fn phase_paths_nest_under_registered_parents() {
        for p in PHASES {
            if let Some((parent, _)) = p.path().rsplit_once('.') {
                assert!(
                    PHASES.iter().any(|q| q.path() == parent),
                    "phase {} has unregistered parent {parent}",
                    p.path()
                );
            }
        }
    }
}
