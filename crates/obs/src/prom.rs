//! Prometheus text exposition (version 0.0.4).
//!
//! [`render_into`] writes the entire registry — static counters, gauges,
//! and histograms, the labeled per-tenant families, and the score
//! sketches — into a caller-owned `String`. The serve layer keeps one
//! reused buffer behind a mutex, so a steady-state `/metrics` scrape
//! performs no allocation: the buffer is cleared (capacity retained) and
//! every value is formatted straight into it.
//!
//! Conventions:
//!
//! - Metric names are the registry's dot-paths with dots mapped to
//!   underscores under a `targad_` prefix; counters get the `_total`
//!   suffix.
//! - Histograms use the native power-of-4 layout: bucket `i` covers
//!   `[4^i, 4^(i+1))` of the recorded unit, so the cumulative `le` edge
//!   for bucket `i` is `4^(i+1) - 1` (values are integers), with the last
//!   bucket folded into `+Inf`. The tracked maximum is exported as a
//!   companion `_max` gauge.
//! - Score sketches export as summaries with `quantile` labels
//!   ([`crate::sketch::EXPORT_QUANTILES`]).
//! - Per-tenant series carry a `tenant` label; the `_other` overflow
//!   series appears only once it has absorbed data.

use std::fmt::Write as _;

use crate::labeled::{
    self, LabelId, LabeledCounter, LabeledGauge, LabeledHistogram, OVERFLOW_LABEL,
};
use crate::metrics::{Counter, Gauge, Histogram, COUNTERS, GAUGES, HISTOGRAMS, HISTOGRAM_BUCKETS};
use crate::sketch::{self, SketchSnapshot, EXPORT_QUANTILES};

/// Appends `name` with dots mapped to underscores under the exposition
/// prefix.
fn push_name(out: &mut String, name: &str) {
    out.push_str("targad_");
    for c in name.chars() {
        out.push(if c == '.' { '_' } else { c });
    }
}

/// Appends a label value with Prometheus escaping (`\`, `"`, newline).
fn push_label_value(out: &mut String, value: &str) {
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
}

fn push_type(out: &mut String, name: &str, kind: &str) {
    out.push_str("# TYPE ");
    push_name(out, name);
    if kind == "counter" {
        out.push_str("_total");
    }
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

/// Cumulative `le` edge of histogram bucket `i` (`None` = `+Inf`).
fn bucket_le(i: usize) -> Option<u64> {
    if i + 1 >= HISTOGRAM_BUCKETS {
        None
    } else {
        Some((1u64 << (2 * (i + 1))) - 1)
    }
}

fn render_counter(out: &mut String, c: &Counter) {
    push_type(out, c.name(), "counter");
    push_name(out, c.name());
    let _ = writeln!(out, "_total {}", c.get());
}

fn render_gauge(out: &mut String, g: &Gauge) {
    push_type(out, g.name(), "gauge");
    push_name(out, g.name());
    let _ = writeln!(out, " {}", g.get());
}

/// Writes one histogram series set (buckets, sum, count, max) with an
/// optional tenant label.
fn render_hist_series(
    out: &mut String,
    name: &str,
    tenant: Option<&str>,
    buckets: &[u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
) {
    let mut cumulative = 0u64;
    for (i, b) in buckets.iter().enumerate() {
        cumulative += b;
        if bucket_le(i).is_none() {
            // The unbounded bucket folds into +Inf (printed below).
            break;
        }
        push_name(out, name);
        out.push_str("_bucket{");
        if let Some(t) = tenant {
            out.push_str("tenant=\"");
            push_label_value(out, t);
            out.push_str("\",");
        }
        let _ = writeln!(out, "le=\"{}\"}} {}", bucket_le(i).unwrap(), cumulative);
    }
    push_name(out, name);
    out.push_str("_bucket{");
    if let Some(t) = tenant {
        out.push_str("tenant=\"");
        push_label_value(out, t);
        out.push_str("\",");
    }
    let _ = writeln!(out, "le=\"+Inf\"}} {count}");
    for (suffix, v) in [("_sum", sum), ("_count", count)] {
        push_name(out, name);
        out.push_str(suffix);
        if let Some(t) = tenant {
            out.push_str("{tenant=\"");
            push_label_value(out, t);
            out.push_str("\"}");
        }
        let _ = writeln!(out, " {v}");
    }
    push_name(out, name);
    out.push_str("_max");
    if let Some(t) = tenant {
        out.push_str("{tenant=\"");
        push_label_value(out, t);
        out.push_str("\"}");
    }
    let _ = writeln!(out, " {max}");
}

fn render_histogram(out: &mut String, h: &Histogram) {
    push_type(out, h.name(), "histogram");
    render_hist_series(
        out,
        h.name(),
        None,
        &h.buckets(),
        h.count(),
        h.sum(),
        h.max(),
    );
}

/// Tenant slots worth printing: all interned labels, plus the overflow
/// slot once anything landed in it.
fn each_tenant(mut f: impl FnMut(LabelId, &'static str)) {
    for (id, name) in labeled::tenants().iter() {
        f(id, name);
    }
    f(LabelId::OVERFLOW, OVERFLOW_LABEL);
}

fn render_labeled_counter(out: &mut String, c: &LabeledCounter) {
    push_type(out, c.name(), "counter");
    each_tenant(|id, tenant| {
        if id.is_overflow() && c.get(id) == 0 {
            return;
        }
        push_name(out, c.name());
        out.push_str("_total{tenant=\"");
        push_label_value(out, tenant);
        let _ = writeln!(out, "\"}} {}", c.get(id));
    });
}

fn render_labeled_gauge(out: &mut String, g: &LabeledGauge) {
    push_type(out, g.name(), "gauge");
    each_tenant(|id, tenant| {
        if id.is_overflow() && g.get(id) == 0 {
            return;
        }
        push_name(out, g.name());
        out.push_str("{tenant=\"");
        push_label_value(out, tenant);
        let _ = writeln!(out, "\"}} {}", g.get(id));
    });
}

fn render_labeled_histogram(out: &mut String, h: &LabeledHistogram) {
    push_type(out, h.name(), "histogram");
    each_tenant(|id, tenant| {
        if id.is_overflow() && h.count(id) == 0 {
            return;
        }
        render_hist_series(
            out,
            h.name(),
            Some(tenant),
            &h.buckets(id),
            h.count(id),
            h.sum(id),
            h.max(id),
        );
    });
}

/// Writes one sketch as a Prometheus summary with an optional tenant
/// label.
fn render_sketch_series(out: &mut String, name: &str, tenant: Option<&str>, snap: &SketchSnapshot) {
    for &q in EXPORT_QUANTILES {
        push_name(out, name);
        out.push('{');
        if let Some(t) = tenant {
            out.push_str("tenant=\"");
            push_label_value(out, t);
            out.push_str("\",");
        }
        let _ = writeln!(out, "quantile=\"{q}\"}} {}", snap.quantile(q));
    }
    for (suffix, v) in [
        ("_sum", snap.sum_micro as f64 / 1e6),
        ("_count", snap.count as f64),
    ] {
        push_name(out, name);
        out.push_str(suffix);
        if let Some(t) = tenant {
            out.push_str("{tenant=\"");
            push_label_value(out, t);
            out.push_str("\"}");
        }
        let _ = writeln!(out, " {v}");
    }
}

/// Renders the entire registry as Prometheus text exposition into `out`.
/// Clears `out` first; retains its capacity, so a reused buffer makes
/// steady-state rendering allocation-free.
pub fn render_into(out: &mut String) {
    out.clear();
    for c in COUNTERS {
        render_counter(out, c);
    }
    for g in GAUGES {
        render_gauge(out, g);
    }
    for h in HISTOGRAMS {
        render_histogram(out, h);
    }
    for c in labeled::LABELED_COUNTERS {
        render_labeled_counter(out, c);
    }
    for g in labeled::LABELED_GAUGES {
        render_labeled_gauge(out, g);
    }
    for h in labeled::LABELED_HISTOGRAMS {
        render_labeled_histogram(out, h);
    }
    push_type(out, sketch::SERVE_SCORES.name(), "summary");
    render_sketch_series(
        out,
        sketch::SERVE_SCORES.name(),
        None,
        &sketch::SERVE_SCORES.snapshot(),
    );
    push_type(out, sketch::TENANT_SCORES.name(), "summary");
    each_tenant(|id, tenant| {
        if id.is_overflow() && sketch::TENANT_SCORES.count(id) == 0 {
            return;
        }
        render_sketch_series(
            out,
            sketch::TENANT_SCORES.name(),
            Some(tenant),
            &sketch::TENANT_SCORES.snapshot(id),
        );
    });
}

/// The exposition as a fresh `String` (tests and one-shot dumps; the
/// serve layer uses [`render_into`] with a reused buffer).
pub fn render() -> String {
    let mut out = String::with_capacity(16 * 1024);
    render_into(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal line-shape validation of the exposition format: every
    /// non-comment line is `name{labels} value` or `name value`, names
    /// match the Prometheus charset, and values parse as f64.
    fn assert_wellformed(text: &str) {
        for line in text.lines() {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("line has a value");
            let name = series.split('{').next().unwrap();
            assert!(
                !name.is_empty()
                    && name
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name in line: {line}"
            );
            assert!(
                value == "+Inf" || value.parse::<f64>().is_ok(),
                "bad value in line: {line}"
            );
            if let Some(rest) = series.strip_prefix(name) {
                if !rest.is_empty() {
                    assert!(
                        rest.starts_with('{') && rest.ends_with('}'),
                        "bad label block in line: {line}"
                    );
                }
            }
        }
    }

    #[test]
    fn bucket_le_edges() {
        assert_eq!(bucket_le(0), Some(3));
        assert_eq!(bucket_le(1), Some(15));
        assert_eq!(bucket_le(HISTOGRAM_BUCKETS - 2), Some((1u64 << 30) - 1));
        assert_eq!(bucket_le(HISTOGRAM_BUCKETS - 1), None);
    }

    #[test]
    fn render_is_wellformed_and_covers_registry() {
        let guard = crate::test_guard();
        crate::metrics::SERVE_REQUESTS.add_always(3);
        crate::metrics::SERVE_BATCH_FILL.record_always(7);
        let id = labeled::tenants().intern("prom-test-tenant");
        labeled::TENANT_REQUESTS.add(id, 2);
        labeled::TENANT_REQUEST_NS.record(id, 1 << 20);
        sketch::SERVE_SCORES.record(0.25);
        sketch::TENANT_SCORES.record(id, 0.25);

        let text = render();
        assert_wellformed(&text);
        assert!(text.contains("# TYPE targad_serve_requests_total counter"));
        assert!(text.contains("# TYPE targad_serve_batch_fill histogram"));
        assert!(text.contains("targad_serve_batch_fill_bucket{le=\"3\"}"));
        assert!(text.contains("targad_serve_batch_fill_bucket{le=\"+Inf\"}"));
        assert!(text.contains("targad_serve_tenant_requests_total{tenant=\"prom-test-tenant\"}"));
        assert!(text.contains(
            "targad_serve_tenant_request_ns_bucket{tenant=\"prom-test-tenant\",le=\"3\"}"
        ));
        assert!(text.contains("targad_serve_score{quantile=\"0.5\"}"));
        assert!(text
            .contains("targad_serve_tenant_score{tenant=\"prom-test-tenant\",quantile=\"0.9\"}"));
        drop(guard);
    }

    #[test]
    fn render_into_reuses_capacity() {
        let mut buf = String::new();
        render_into(&mut buf);
        let cap = buf.capacity();
        assert!(!buf.is_empty());
        render_into(&mut buf);
        assert!(buf.capacity() >= cap);
        // Back-to-back renders of a quiescent registry are identical.
        let again = {
            let mut b = String::new();
            render_into(&mut b);
            b
        };
        // Gauges/counters may move under parallel tests in this crate;
        // compare only line counts to stay robust.
        assert_eq!(buf.lines().count(), again.lines().count());
    }

    #[test]
    fn label_values_escape() {
        let mut s = String::new();
        push_label_value(&mut s, "a\"b\\c\nd");
        assert_eq!(s, "a\\\"b\\\\c\\nd");
    }
}
