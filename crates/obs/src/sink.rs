//! Event sinks: JSON Lines serialization of the training event stream.
//!
//! [`JsonlSink`] adapts any [`Write`] into a [`TrainObserver`] that emits
//! one self-describing JSON object per event (a `"type"` field plus the
//! event's payload). [`hub`] is a process-global sink for emitters that
//! have no observer plumbing of their own (the baseline epoch loops).

use std::io::Write;

use crate::events::{
    AeEpochEvent, EpochEvent, FitEndEvent, FitStartEvent, SelectionEvent, TrainObserver,
    WarningEvent,
};
use crate::json;

/// A [`TrainObserver`] that serializes every event as one JSON line.
///
/// Epoch lines carry the loss decomposition and weight *summaries*; the
/// raw per-candidate weight vector is only written with the final
/// `fit_end` line, keeping per-epoch lines O(1) in dataset size.
pub struct JsonlSink<W: Write> {
    writer: W,
    buf: String,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps `writer`; each event becomes one `\n`-terminated JSON line.
    pub fn new(writer: W) -> Self {
        Self {
            writer,
            buf: String::with_capacity(256),
        }
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.writer.flush();
        self.writer
    }

    fn emit(&mut self) {
        self.buf.push('\n');
        // Telemetry must never fail training: I/O errors surface as a
        // warning metric, not a panic.
        if self.writer.write_all(self.buf.as_bytes()).is_err() {
            crate::metrics::OBS_WARNINGS.force_inc();
        }
        self.buf.clear();
    }
}

impl<W: Write> TrainObserver for JsonlSink<W> {
    fn on_fit_start(&mut self, e: &FitStartEvent) {
        self.buf.push_str("{\"type\":\"fit_start\",\"model\":");
        json::push_str(&mut self.buf, e.model);
        self.buf.push_str(&format!(
            ",\"n_labeled\":{},\"n_unlabeled\":{},\"dims\":{},\"m\":{},\"epochs\":{},\"threads\":{}",
            e.n_labeled, e.n_unlabeled, e.dims, e.m, e.epochs, e.threads
        ));
        self.buf.push_str(",\"lambda1\":");
        json::push_f64(&mut self.buf, e.lambda1);
        self.buf.push_str(",\"lambda2\":");
        json::push_f64(&mut self.buf, e.lambda2);
        self.buf.push('}');
        self.emit();
    }

    fn on_selection(&mut self, e: &SelectionEvent<'_>) {
        self.buf.push_str(&format!(
            "{{\"type\":\"selection\",\"k\":{},\"n_anomaly\":{},\"n_normal\":{},\"threshold\":",
            e.k, e.n_anomaly, e.n_normal
        ));
        json::push_f64(&mut self.buf, e.threshold);
        self.buf.push_str(",\"clusters\":[");
        for (i, c) in e.clusters.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push_str(&format!(
                "{{\"cluster\":{},\"size\":{},\"recon_quantiles\":",
                c.cluster, c.size
            ));
            json::push_f64_slice(&mut self.buf, &c.quantiles);
            self.buf.push('}');
        }
        self.buf.push(']');
        if let Some(comp) = e.composition {
            self.buf.push_str(&format!(
                ",\"composition\":{{\"normal\":{},\"target\":{},\"non_target\":{}}}",
                comp.normal, comp.target, comp.non_target
            ));
        }
        self.buf.push('}');
        self.emit();
    }

    fn on_ae_epoch(&mut self, e: &AeEpochEvent) {
        self.buf.push_str(&format!(
            "{{\"type\":\"ae_epoch\",\"epoch\":{},\"mean_loss\":",
            e.epoch
        ));
        json::push_f64(&mut self.buf, e.mean_loss);
        self.buf.push('}');
        self.emit();
    }

    fn on_epoch(&mut self, e: &EpochEvent<'_>) {
        self.buf.push_str(&format!(
            "{{\"type\":\"epoch\",\"epoch\":{},\"steps\":{},\"loss\":{{\"total\":",
            e.epoch, e.steps
        ));
        json::push_f64(&mut self.buf, e.loss.total);
        self.buf.push_str(",\"ce\":");
        json::push_f64(&mut self.buf, e.loss.ce);
        self.buf.push_str(",\"oe\":");
        json::push_f64(&mut self.buf, e.loss.oe);
        self.buf.push_str(",\"re\":");
        json::push_f64(&mut self.buf, e.loss.re);
        self.buf.push_str("},\"oe_weights\":{\"n\":");
        self.buf.push_str(&e.oe_weights.n.to_string());
        self.buf.push_str(",\"mean\":");
        json::push_f64(&mut self.buf, e.oe_weights.mean);
        self.buf.push_str(",\"min\":");
        json::push_f64(&mut self.buf, e.oe_weights.min);
        self.buf.push_str(",\"max\":");
        json::push_f64(&mut self.buf, e.oe_weights.max);
        self.buf.push_str(",\"top_q_mass\":");
        json::push_f64(&mut self.buf, e.oe_weights.top_q_mass);
        self.buf.push_str("},\"weight_means\":{\"normal\":");
        json::push_f64(&mut self.buf, e.weight_means.normal);
        self.buf.push_str(",\"target\":");
        json::push_f64(&mut self.buf, e.weight_means.target);
        self.buf.push_str(",\"non_target\":");
        json::push_f64(&mut self.buf, e.weight_means.non_target);
        self.buf.push('}');
        match e.candidate_flips {
            Some(n) => self.buf.push_str(&format!(",\"candidate_flips\":{n}")),
            None => self.buf.push_str(",\"candidate_flips\":null"),
        }
        self.buf
            .push_str(&format!(",\"clip_activations\":{}}}", e.clip_activations));
        self.emit();
    }

    fn on_fit_end(&mut self, e: &FitEndEvent<'_>) {
        self.buf.push_str(&format!(
            "{{\"type\":\"fit_end\",\"epochs\":{},\"wall_ns\":{},\"final_weights\":",
            e.epochs, e.wall_ns
        ));
        json::push_f64_slice(&mut self.buf, e.final_weights);
        if let Some(codes) = e.truth_codes {
            self.buf.push_str(",\"truth_codes\":[");
            for (i, c) in codes.iter().enumerate() {
                if i > 0 {
                    self.buf.push(',');
                }
                self.buf.push_str(&c.to_string());
            }
            self.buf.push(']');
        }
        self.buf.push('}');
        self.emit();
        let _ = self.writer.flush();
    }

    fn on_warning(&mut self, e: &WarningEvent<'_>) {
        self.buf.push_str("{\"type\":\"warning\",\"code\":");
        json::push_str(&mut self.buf, e.code);
        self.buf.push_str(",\"message\":");
        json::push_str(&mut self.buf, e.message);
        self.buf.push('}');
        self.emit();
    }
}

/// The process-global event hub.
///
/// Emitters with no observer of their own (the baseline models' epoch
/// loops) report here; with no sink installed and the telemetry gate off
/// the cost per call is one atomic load. Install a writer (e.g. a file)
/// with [`hub::install`] to capture the stream as JSON Lines.
pub mod hub {
    use std::io::Write;
    use std::sync::Mutex;

    use crate::json;
    use crate::metrics::TRAIN_EPOCHS;

    static SINK: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);

    fn lock() -> std::sync::MutexGuard<'static, Option<Box<dyn Write + Send>>> {
        SINK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Installs `writer` as the global hub sink (replacing any previous
    /// one) and returns whether one was already installed.
    pub fn install(writer: Box<dyn Write + Send>) -> bool {
        lock().replace(writer).is_some()
    }

    /// Removes and returns the current hub sink, if any.
    pub fn uninstall() -> Option<Box<dyn Write + Send>> {
        lock().take()
    }

    /// Reports one finished training epoch of `model`. Counts into
    /// `train.epochs` and, when a hub sink is installed, appends a
    /// `{"type":"model_epoch",...}` JSON line.
    pub fn training_epoch(model: &str, epoch: usize, loss: f64) {
        TRAIN_EPOCHS.inc();
        if !crate::enabled() {
            return;
        }
        let mut guard = lock();
        if let Some(w) = guard.as_mut() {
            let mut line = String::with_capacity(96);
            line.push_str("{\"type\":\"model_epoch\",\"model\":");
            json::push_str(&mut line, model);
            line.push_str(&format!(",\"epoch\":{epoch},\"loss\":"));
            json::push_f64(&mut line, loss);
            line.push_str("}\n");
            if w.write_all(line.as_bytes()).is_err() {
                crate::metrics::OBS_WARNINGS.force_inc();
            }
        }
    }

    /// Flushes the installed hub sink, if any.
    pub fn flush() {
        if let Some(w) = lock().as_mut() {
            let _ = w.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{LossDecomposition, WeightMeans, WeightSummary};

    #[test]
    fn jsonl_sink_emits_one_line_per_event() {
        let _g = crate::test_guard();
        let mut sink = JsonlSink::new(Vec::new());
        sink.on_fit_start(&FitStartEvent {
            model: "TargAD",
            n_labeled: 10,
            n_unlabeled: 90,
            dims: 6,
            m: 2,
            epochs: 3,
            threads: 4,
            lambda1: 1.0,
            lambda2: 0.1,
        });
        let weights = [0.5, 1.0];
        sink.on_epoch(&EpochEvent {
            epoch: 0,
            steps: 2,
            loss: LossDecomposition {
                ce: 0.5,
                oe: 0.25,
                re: 0.125,
                lambda1: 1.0,
                lambda2: 0.1,
                total: 0.7625,
            },
            oe_weights: WeightSummary::from_weights(&weights),
            weights: &weights,
            eps: None,
            weight_means: WeightMeans::default(),
            candidate_flips: None,
            clip_activations: 1,
            grad_clip: 5.0,
        });
        sink.on_fit_end(&FitEndEvent {
            epochs: 1,
            final_weights: &weights,
            truth_codes: None,
            wall_ns: 7,
        });
        let out = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"type\":\"fit_start\""));
        assert!(lines[1].contains("\"ce\":0.5"));
        assert!(lines[1].contains("\"candidate_flips\":null"));
        assert!(lines[2].contains("\"final_weights\":[0.5,1]"));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    #[cfg(feature = "telemetry")]
    fn hub_counts_and_writes_when_enabled() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        let before = crate::metrics::TRAIN_EPOCHS.get();
        hub::uninstall();
        hub::install(Box::new(Vec::new()));
        hub::training_epoch("DevNet", 0, 1.25);
        assert_eq!(crate::metrics::TRAIN_EPOCHS.get(), before + 1);
        let sink = hub::uninstall().expect("sink installed");
        // Downcast via the Any-free route: re-serialize expectations only.
        drop(sink);
        crate::set_enabled(false);
    }
}
