//! Mergeable score-distribution sketches.
//!
//! Serve-time drift detection (ROADMAP item 1) needs per-tenant quantiles
//! of the anomaly scores actually served, cheap enough to record on every
//! row. This module provides a fixed-layout log-bucket sketch: recording
//! is a handful of bit operations plus two relaxed atomic adds, snapshots
//! are plain arrays that merge by element-wise addition, and quantiles
//! come from a bucket walk with intra-bucket geometric interpolation.
//!
//! Layout: scores are nonnegative reals (Eq. 9 priority scores and Eq. 2
//! reconstruction errors both are). The sketch spans 16 octaves
//! `[2^-12, 2^4)` with 4 sub-buckets per octave (mantissa top two bits) —
//! 64 buckets, ~19% relative width each — plus an underflow bucket (zero
//! and tiny scores) and an overflow bucket. Negative or non-finite scores
//! clamp to the nearest end. Like the labeled families, sketch recording
//! is **ungated** serving truth.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::labeled::{LabelId, LABEL_SLOTS};

/// Sub-buckets per octave (power of two).
const SUBDIV: usize = 4;
/// Lowest represented octave: scores below `2^MIN_EXP` go to underflow.
const MIN_EXP: i32 = -12;
/// One past the highest represented octave: scores at or above
/// `2^MAX_EXP` go to overflow.
const MAX_EXP: i32 = 4;
/// Log-spaced buckets between underflow and overflow.
const LOG_BUCKETS: usize = ((MAX_EXP - MIN_EXP) as usize) * SUBDIV;

/// Total bucket count: underflow + log buckets + overflow.
pub const SKETCH_BUCKETS: usize = LOG_BUCKETS + 2;

/// Index of the underflow bucket (zero, tiny, and negative scores).
pub const UNDERFLOW_BUCKET: usize = 0;
/// Index of the overflow bucket (huge and non-finite scores).
pub const OVERFLOW_BUCKET: usize = SKETCH_BUCKETS - 1;

/// Micro-units per score unit for the atomic running sum.
const MICRO: f64 = 1e6;

/// Bucket index for a score.
#[inline]
fn bucket_of(score: f64) -> usize {
    if score <= 0.0 || score.is_nan() {
        // Zero, negative, or NaN: underflow end.
        return UNDERFLOW_BUCKET;
    }
    if score.is_infinite() {
        return OVERFLOW_BUCKET;
    }
    let bits = score.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
    if exp < MIN_EXP {
        return UNDERFLOW_BUCKET;
    }
    if exp >= MAX_EXP {
        return OVERFLOW_BUCKET;
    }
    // Top two mantissa bits pick the sub-bucket within the octave.
    // Subnormals (exp == -1023) were already routed to underflow above.
    let sub = ((bits >> 50) & 0x3) as usize;
    1 + ((exp - MIN_EXP) as usize) * SUBDIV + sub
}

/// Lower edge of log bucket `i` (1-based within the log range).
fn bucket_lower(i: usize) -> f64 {
    debug_assert!((1..=LOG_BUCKETS).contains(&i));
    let li = i - 1;
    let exp = MIN_EXP + (li / SUBDIV) as i32;
    let frac = 1.0 + (li % SUBDIV) as f64 / SUBDIV as f64;
    frac * (exp as f64).exp2()
}

/// Upper edge of log bucket `i`.
fn bucket_upper(i: usize) -> f64 {
    if i == LOG_BUCKETS {
        (MAX_EXP as f64).exp2()
    } else {
        bucket_lower(i + 1)
    }
}

/// A lock-free score-distribution sketch.
pub struct ScoreSketch {
    name: &'static str,
    buckets: [AtomicU64; SKETCH_BUCKETS],
    count: AtomicU64,
    /// Running sum in micro-score units (saturating).
    sum_micro: AtomicU64,
}

impl ScoreSketch {
    /// A named, empty sketch.
    pub const fn new(name: &'static str) -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            name,
            buckets: [ZERO; SKETCH_BUCKETS],
            count: AtomicU64::new(0),
            sum_micro: AtomicU64::new(0),
        }
    }

    /// The sketch's dot-path name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one score (ungated, allocation-free).
    #[inline]
    pub fn record(&self, score: f64) {
        self.buckets[bucket_of(score)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let micro = if score.is_finite() && score > 0.0 {
            (score * MICRO) as u64
        } else {
            0
        };
        if micro > 0 {
            self.sum_micro.fetch_add(micro, Ordering::Relaxed);
        }
    }

    /// Total scores recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the sketch.
    pub fn snapshot(&self) -> SketchSnapshot {
        SketchSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_micro: self.sum_micro.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the sketch.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_micro.store(0, Ordering::Relaxed);
    }
}

/// An owned, mergeable copy of a [`ScoreSketch`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SketchSnapshot {
    /// Per-bucket counts (underflow, log buckets, overflow).
    pub buckets: [u64; SKETCH_BUCKETS],
    /// Total scores recorded.
    pub count: u64,
    /// Running sum in micro-score units.
    pub sum_micro: u64,
}

impl SketchSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        Self {
            buckets: [0; SKETCH_BUCKETS],
            count: 0,
            sum_micro: 0,
        }
    }

    /// Element-wise merge of another snapshot (cross-shard / cross-window
    /// aggregation).
    pub fn merge(&mut self, other: &SketchSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_micro = self.sum_micro.saturating_add(other.sum_micro);
    }

    /// Mean recorded score (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_micro as f64 / MICRO / self.count as f64
        }
    }

    /// Approximate `q`-quantile (`0 ≤ q ≤ 1`) by bucket walk with
    /// geometric interpolation inside the landing bucket. Underflow
    /// resolves to the range floor, overflow to the range ceiling.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            if b == 0 {
                continue;
            }
            if seen + b >= rank {
                if i == UNDERFLOW_BUCKET {
                    return 0.0;
                }
                if i == OVERFLOW_BUCKET {
                    return (MAX_EXP as f64).exp2();
                }
                let lo = bucket_lower(i);
                let hi = bucket_upper(i);
                let frac = (rank - seen) as f64 / b as f64;
                // Geometric interpolation matches the log bucket layout.
                return lo * (hi / lo).powf(frac);
            }
            seen += b;
        }
        (MAX_EXP as f64).exp2()
    }
}

impl Default for SketchSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

/// A sketch family over the tenant label set.
pub struct LabeledSketch {
    name: &'static str,
    cells: [ScoreSketch; LABEL_SLOTS],
}

impl LabeledSketch {
    /// A named family with every cell empty.
    pub const fn new(name: &'static str) -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const CELL: ScoreSketch = ScoreSketch::new("");
        Self {
            name,
            cells: [CELL; LABEL_SLOTS],
        }
    }

    /// The family's dot-path name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one score into the label's sketch.
    #[inline]
    pub fn record(&self, id: LabelId, score: f64) {
        self.cells[id.index()].record(score);
    }

    /// Total scores recorded for the label.
    pub fn count(&self, id: LabelId) -> u64 {
        self.cells[id.index()].count()
    }

    /// Snapshot of the label's sketch.
    pub fn snapshot(&self, id: LabelId) -> SketchSnapshot {
        self.cells[id.index()].snapshot()
    }

    /// Zeroes every cell (labels stay interned).
    pub fn reset(&self) {
        for c in &self.cells {
            c.reset();
        }
    }
}

// ---------------------------------------------------------------------------
// The registered sketches.

/// Distribution of every anomaly score served, across all tenants.
pub static SERVE_SCORES: ScoreSketch = ScoreSketch::new("serve.score");

/// Distribution of anomaly scores served, per tenant.
pub static TENANT_SCORES: LabeledSketch = LabeledSketch::new("serve.tenant.score");

/// Quantiles exported by the Prometheus exposition for each sketch.
pub static EXPORT_QUANTILES: &[f64] = &[0.5, 0.9, 0.99];

/// Zeroes every registered sketch (bench/test isolation).
pub fn reset_values() {
    SERVE_SCORES.reset();
    TENANT_SCORES.reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_monotone_and_total() {
        // Edges are strictly increasing and bucket_of() inverts them.
        let mut prev = 0.0;
        for i in 1..=LOG_BUCKETS {
            let lo = bucket_lower(i);
            let hi = bucket_upper(i);
            assert!(lo > prev, "bucket {i} lower edge not increasing");
            assert!(hi > lo);
            assert_eq!(bucket_of(lo), i, "lower edge of bucket {i}");
            // A value just under the upper edge stays in the bucket.
            assert_eq!(bucket_of(hi * (1.0 - 1e-12)), i, "upper edge of bucket {i}");
            prev = lo;
        }
        // Extremes.
        assert_eq!(bucket_of(0.0), UNDERFLOW_BUCKET);
        assert_eq!(bucket_of(-3.0), UNDERFLOW_BUCKET);
        assert_eq!(bucket_of(f64::NAN), UNDERFLOW_BUCKET);
        assert_eq!(bucket_of(2e-5), UNDERFLOW_BUCKET);
        assert_eq!(bucket_of(16.0), OVERFLOW_BUCKET);
        assert_eq!(bucket_of(f64::INFINITY), OVERFLOW_BUCKET);
    }

    #[test]
    fn quantiles_bracket_known_distribution() {
        let s = ScoreSketch::new("test.sketch");
        // 1000 scores uniform over [0.1, 1.0).
        for i in 0..1000 {
            s.record(0.1 + 0.9 * (i as f64 / 1000.0));
        }
        let snap = s.snapshot();
        assert_eq!(snap.count, 1000);
        let p50 = snap.quantile(0.5);
        let p90 = snap.quantile(0.9);
        // True p50 = 0.55, p90 = 0.91; bucket width is ~19% relative.
        assert!((0.4..0.7).contains(&p50), "p50 = {p50}");
        assert!((0.75..1.1).contains(&p90), "p90 = {p90}");
        assert!(p50 < p90);
        assert!((snap.mean() - 0.55).abs() < 0.01, "mean = {}", snap.mean());
    }

    #[test]
    fn snapshots_merge_exactly() {
        let a = ScoreSketch::new("test.a");
        let b = ScoreSketch::new("test.b");
        for i in 1..=100 {
            a.record(i as f64 / 100.0);
            b.record(i as f64 / 10.0);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, 200);
        let direct = {
            let c = ScoreSketch::new("test.c");
            for i in 1..=100 {
                c.record(i as f64 / 100.0);
                c.record(i as f64 / 10.0);
            }
            c.snapshot()
        };
        assert_eq!(merged, direct);
    }

    #[test]
    fn labeled_sketch_isolates_tenants() {
        static SK: LabeledSketch = LabeledSketch::new("test.labeled_sketch");
        let set = crate::labeled::LabelSet::new();
        let a = set.intern("a");
        let b = set.intern("b");
        SK.record(a, 0.5);
        SK.record(a, 0.5);
        SK.record(b, 2.0);
        assert_eq!(SK.count(a), 2);
        assert_eq!(SK.count(b), 1);
        let qa = SK.snapshot(a).quantile(0.5);
        let qb = SK.snapshot(b).quantile(0.5);
        assert!(qa < 1.0 && qb > 1.0, "qa = {qa}, qb = {qb}");
        SK.reset();
        assert_eq!(SK.count(a), 0);
    }
}
