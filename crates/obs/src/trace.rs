//! Request-scoped trace spans for the serve path.
//!
//! A [`RequestTrace`] rides inside a request as it crosses the serve
//! layers (HTTP thread → batcher queue → worker → engine → reply) and
//! accumulates monotonic nanoseconds per [`ServePhase`]. It is a small
//! `Copy` struct — no allocation, no shared state — so threading it
//! through channels costs a memcpy.
//!
//! Tracing honors the process-wide telemetry gate ([`crate::enabled`]),
//! sampled **once** at [`RequestTrace::begin`]: with the gate down the
//! trace is inert — no clock reads, no stores — so the scored results are
//! bit-identical to a build without tracing. Phases recorded on a
//! different thread than the span holder use [`RequestTrace::add`] with a
//! duration the caller already measured (the batcher already timestamps
//! enqueue for its queue-wait histogram).

use std::time::Instant;

/// Phases of one `/score` request, in lifecycle order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum ServePhase {
    /// Waiting in the micro-batcher queue for a worker.
    QueueWait = 0,
    /// Drained from the queue, being coalesced and grouped into a batch.
    Coalesce = 1,
    /// Inside the scoring engine (the coalesced batch's engine wall time).
    Engine = 2,
    /// Serializing the HTTP response body.
    Serialize = 3,
}

/// Number of [`ServePhase`] variants.
pub const SERVE_PHASES: usize = 4;

impl ServePhase {
    /// All phases in lifecycle order.
    pub const ALL: [ServePhase; SERVE_PHASES] = [
        ServePhase::QueueWait,
        ServePhase::Coalesce,
        ServePhase::Engine,
        ServePhase::Serialize,
    ];

    /// Stable snake_case name (used in access-log keys).
    pub fn name(self) -> &'static str {
        match self {
            ServePhase::QueueWait => "queue_wait_ns",
            ServePhase::Coalesce => "coalesce_ns",
            ServePhase::Engine => "engine_ns",
            ServePhase::Serialize => "serialize_ns",
        }
    }
}

/// Per-request phase timings. `Copy`; inert when tracing is disabled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RequestTrace {
    active: bool,
    phase_ns: [u64; SERVE_PHASES],
}

impl RequestTrace {
    /// Starts a trace, sampling the telemetry gate once. With the gate
    /// down (or the `telemetry` feature off) the trace never reads a
    /// clock again.
    #[inline]
    pub fn begin() -> Self {
        Self {
            active: crate::enabled(),
            phase_ns: [0; SERVE_PHASES],
        }
    }

    /// An always-inert trace.
    #[inline]
    pub fn disabled() -> Self {
        Self {
            active: false,
            phase_ns: [0; SERVE_PHASES],
        }
    }

    /// Whether this trace is recording.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Opens an RAII span that adds its elapsed time to `phase` on drop.
    /// Reads the clock only when the trace is active.
    #[inline]
    pub fn span(&mut self, phase: ServePhase) -> TraceSpan<'_> {
        let start = self.active.then(Instant::now);
        TraceSpan {
            trace: self,
            phase,
            start,
        }
    }

    /// Adds an externally measured duration to `phase` (for phases timed
    /// on another thread). No-op when inactive.
    #[inline]
    pub fn add(&mut self, phase: ServePhase, ns: u64) {
        if self.active {
            self.phase_ns[phase as usize] += ns;
        }
    }

    /// Nanoseconds accumulated in `phase`.
    #[inline]
    pub fn phase_ns(&self, phase: ServePhase) -> u64 {
        self.phase_ns[phase as usize]
    }

    /// Sum across all phases.
    pub fn total_ns(&self) -> u64 {
        self.phase_ns.iter().sum()
    }
}

/// RAII guard recording one phase's wall time into a [`RequestTrace`].
pub struct TraceSpan<'a> {
    trace: &'a mut RequestTrace,
    phase: ServePhase,
    start: Option<Instant>,
}

impl Drop for TraceSpan<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = start.elapsed().as_nanos() as u64;
            self.trace.phase_ns[self.phase as usize] += ns;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_is_inert() {
        let mut t = RequestTrace::disabled();
        assert!(!t.is_active());
        {
            let _s = t.span(ServePhase::Engine);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        t.add(ServePhase::QueueWait, 1_000_000);
        assert_eq!(t.total_ns(), 0);
        for p in ServePhase::ALL {
            assert_eq!(t.phase_ns(p), 0);
        }
    }

    #[test]
    #[cfg(feature = "telemetry")]
    fn active_trace_accumulates_per_phase() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        let mut t = RequestTrace::begin();
        assert!(t.is_active());
        crate::set_enabled(false);
        // Gate sampled at begin(): still active after the gate drops.
        {
            let _s = t.span(ServePhase::Engine);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        {
            let _s = t.span(ServePhase::Engine);
        }
        t.add(ServePhase::QueueWait, 500);
        assert!(t.phase_ns(ServePhase::Engine) >= 1_000_000);
        assert_eq!(t.phase_ns(ServePhase::QueueWait), 500);
        assert_eq!(t.phase_ns(ServePhase::Coalesce), 0);
        assert_eq!(
            t.total_ns(),
            t.phase_ns(ServePhase::Engine) + t.phase_ns(ServePhase::QueueWait)
        );
    }

    #[test]
    #[cfg(feature = "telemetry")]
    fn begin_respects_gate() {
        let _g = crate::test_guard();
        crate::set_enabled(false);
        assert!(!RequestTrace::begin().is_active());
        crate::set_enabled(true);
        assert!(RequestTrace::begin().is_active());
        crate::set_enabled(false);
    }

    #[test]
    fn phase_names_are_stable() {
        let names: Vec<&str> = ServePhase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            ["queue_wait_ns", "coalesce_ns", "engine_ns", "serialize_ns"]
        );
    }
}
