//! Deterministic parallel execution runtime.
//!
//! Every parallel operation in this workspace goes through a [`Runtime`]
//! handle. The runtime's one non-negotiable contract is **determinism**:
//! for the same inputs, results are bit-identical regardless of how many
//! worker threads execute them — `Runtime::new(1)`, `Runtime::new(7)`, and
//! `Runtime::from_env()` on any machine all produce the same bytes.
//!
//! The contract holds by construction, not by testing alone:
//!
//! * **Disjoint ownership** — work is split into contiguous index ranges,
//!   one per worker; no two workers ever touch the same output element, so
//!   there is nothing to race on and no locks are needed.
//! * **Partition-independent elements** — the closures accepted here
//!   receive global indices and must compute each element from those
//!   indices alone, never from chunk-local state. The chunk boundaries can
//!   then move freely (different thread counts) without changing any
//!   element.
//! * **Fixed reduction order** — when per-worker results are combined
//!   ([`Runtime::par_map_indexed`]), they are concatenated in worker-index
//!   order, which equals global index order. Floating-point reductions
//!   therefore see operands in the same sequence every time.
//!
//! Workers are scoped threads ([`std::thread::scope`]) spawned per call:
//! no thread pool lives between calls, no global state, no channels. For
//! the kernel sizes this workspace runs (matrices of 10³–10⁷ elements,
//! forests of hundreds of trees, benchmark suites of dozens of cells),
//! spawn cost is noise next to the work; in exchange the runtime is
//! dependency-free and impossible to poison.
//!
//! # Choosing a thread count
//!
//! [`Runtime::from_env`] reads `TARGAD_THREADS` (falling back to
//! [`std::thread::available_parallelism`]); [`Runtime::new`] pins an exact
//! count; [`Runtime::serial`] is the single-threaded identity. The handle
//! is plain data (`Copy`) — pass it explicitly to whatever needs it.

use std::num::NonZeroUsize;

/// Environment variable consulted by [`Runtime::from_env`].
pub const THREADS_ENV: &str = "TARGAD_THREADS";

/// A handle selecting how many workers execute parallel operations.
///
/// The handle is deliberately tiny and [`Copy`]: embed it in model structs,
/// pass it down call stacks, and never reach for a global.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Runtime {
    threads: usize,
}

impl Default for Runtime {
    /// Same as [`Runtime::from_env`].
    fn default() -> Self {
        Self::from_env()
    }
}

impl Runtime {
    /// A runtime with exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// A single-threaded runtime: every operation runs inline on the
    /// calling thread.
    pub fn serial() -> Self {
        Self { threads: 1 }
    }

    /// A runtime sized from the environment: the `TARGAD_THREADS` variable
    /// if set to a positive integer, otherwise the machine's available
    /// parallelism, otherwise 1.
    pub fn from_env() -> Self {
        let from_var = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0);
        let threads = from_var.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        });
        Self { threads }
    }

    /// The number of workers this runtime uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether operations run inline on the calling thread.
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// Splits `data` into contiguous runs of whole rows (each `row_len`
    /// elements) and calls `f(first_row, rows)` on each run, in parallel.
    ///
    /// `f` receives the global index of the run's first row plus the
    /// mutable slice holding those rows back-to-back. For the result to be
    /// deterministic across thread counts, `f` must compute each row from
    /// its global row index alone — never from where the chunk boundary
    /// happens to fall.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of `row_len`, or if a
    /// worker closure panics.
    pub fn par_rows<T, F>(&self, data: &mut [T], row_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(row_len > 0, "par_rows: row_len must be positive");
        assert_eq!(data.len() % row_len, 0, "par_rows: data is not whole rows");
        let rows = data.len() / row_len;
        let workers = self.threads.min(rows).max(1);
        if workers <= 1 {
            f(0, data);
            return;
        }
        let base = rows / workers;
        let extra = rows % workers;
        std::thread::scope(|scope| {
            let f = &f;
            let mut rest = data;
            let mut first_row = 0;
            for w in 0..workers {
                let take = base + usize::from(w < extra);
                let (chunk, tail) = rest.split_at_mut(take * row_len);
                rest = tail;
                let start = first_row;
                first_row += take;
                scope.spawn(move || f(start, chunk));
            }
        });
    }

    /// Splits `data` into contiguous chunks, one per worker, and calls
    /// `f(offset, chunk)` on each in parallel. Equivalent to
    /// [`Runtime::par_rows`] with single-element rows.
    pub fn par_chunks<T, F>(&self, data: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        if data.is_empty() {
            return;
        }
        self.par_rows(data, 1, f);
    }

    /// Computes `f(i)` for every `i in 0..len` in parallel and returns the
    /// results in index order.
    ///
    /// Each worker owns a contiguous index range; per-worker outputs are
    /// concatenated in worker order, which equals index order, so the
    /// returned vector is identical at every thread count as long as `f`
    /// depends only on its index argument.
    ///
    /// # Panics
    /// Panics if a worker closure panics.
    pub fn par_map_indexed<T, F>(&self, len: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads.min(len).max(1);
        if workers <= 1 {
            return (0..len).map(f).collect();
        }
        let base = len / workers;
        let extra = len % workers;
        let mut out = Vec::with_capacity(len);
        std::thread::scope(|scope| {
            let f = &f;
            let mut handles = Vec::with_capacity(workers);
            let mut start = 0;
            for w in 0..workers {
                let take = base + usize::from(w < extra);
                let range = start..start + take;
                start += take;
                handles.push(scope.spawn(move || range.map(f).collect::<Vec<T>>()));
            }
            for handle in handles {
                out.extend(handle.join().expect("runtime worker panicked"));
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn new_clamps_to_one_and_serial_is_one() {
        assert_eq!(Runtime::new(0).threads(), 1);
        assert_eq!(Runtime::new(6).threads(), 6);
        assert!(Runtime::serial().is_serial());
        assert!(!Runtime::new(2).is_serial());
    }

    #[test]
    fn par_map_indexed_matches_serial_at_any_worker_count() {
        let expect: Vec<u64> = (0..1013u64).map(|i| i * i + 7).collect();
        for workers in [1, 2, 3, 7, 16, 2000] {
            let rt = Runtime::new(workers);
            let got = rt.par_map_indexed(1013, |i| (i as u64) * (i as u64) + 7);
            assert_eq!(got, expect, "workers = {workers}");
        }
    }

    #[test]
    fn par_map_indexed_handles_empty_and_single() {
        let rt = Runtime::new(4);
        assert!(rt.par_map_indexed(0, |i| i).is_empty());
        assert_eq!(rt.par_map_indexed(1, |i| i + 10), vec![10]);
    }

    #[test]
    fn par_rows_partitions_exactly_and_uses_global_indices() {
        let row_len = 3;
        let rows = 29;
        for workers in [1, 2, 7, 64] {
            let rt = Runtime::new(workers);
            let mut data = vec![0usize; rows * row_len];
            rt.par_rows(&mut data, row_len, |first_row, chunk| {
                for (r, row) in chunk.chunks_mut(row_len).enumerate() {
                    for (c, cell) in row.iter_mut().enumerate() {
                        *cell = (first_row + r) * 100 + c;
                    }
                }
            });
            let expect: Vec<usize> = (0..rows)
                .flat_map(|r| (0..row_len).map(move |c| r * 100 + c))
                .collect();
            assert_eq!(data, expect, "workers = {workers}");
        }
    }

    #[test]
    fn par_chunks_touches_every_element_once() {
        let rt = Runtime::new(5);
        let mut data = vec![0u32; 101];
        let calls = AtomicUsize::new(0);
        rt.par_chunks(&mut data, |offset, chunk| {
            calls.fetch_add(1, Ordering::SeqCst);
            for (i, v) in chunk.iter_mut().enumerate() {
                *v += (offset + i) as u32;
            }
        });
        assert_eq!(calls.load(Ordering::SeqCst), 5);
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u32));
    }

    #[test]
    fn par_chunks_on_empty_slice_is_a_no_op() {
        let rt = Runtime::new(4);
        let mut data: [u8; 0] = [];
        rt.par_chunks(&mut data, |_, _| panic!("must not be called"));
    }

    #[test]
    #[should_panic(expected = "whole rows")]
    fn par_rows_rejects_ragged_data() {
        Runtime::serial().par_rows(&mut [0u8; 7], 3, |_, _| {});
    }

    #[test]
    fn from_env_is_at_least_one() {
        assert!(Runtime::from_env().threads() >= 1);
    }
}
