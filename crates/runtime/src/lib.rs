//! Deterministic parallel execution runtime.
//!
//! Every parallel operation in this workspace goes through a [`Runtime`]
//! handle. The runtime's one non-negotiable contract is **determinism**:
//! for the same inputs, results are bit-identical regardless of how many
//! worker threads execute them — `Runtime::new(1)`, `Runtime::new(7)`, and
//! `Runtime::from_env()` on any machine all produce the same bytes.
//!
//! The contract holds by construction, not by testing alone:
//!
//! * **Disjoint ownership** — work is split into contiguous index ranges,
//!   one per worker; no two workers ever touch the same output element, so
//!   there is nothing to race on and no locks are needed.
//! * **Partition-independent elements** — the closures accepted here
//!   receive global indices and must compute each element from those
//!   indices alone, never from chunk-local state. The chunk boundaries can
//!   then move freely (different thread counts) without changing any
//!   element.
//! * **Fixed reduction order** — when per-worker results are combined
//!   ([`Runtime::par_map_indexed`]), they are concatenated in worker-index
//!   order, which equals global index order. Floating-point reductions
//!   therefore see operands in the same sequence every time. Work whose
//!   reduction the *caller* performs ([`Runtime::par_shards`]) is split
//!   into worker-count-independent shards so the caller can reduce them in
//!   fixed shard order.
//!
//! Workers live in a process-wide persistent pool ([`pool`]) spawned
//! lazily on the first multi-worker dispatch and parked on a condvar
//! between jobs. Dispatch is allocation-free — required by the
//! zero-allocation training contract, which a scoped-thread spawn per
//! optimizer step would break. Because results never depend on the worker
//! count, the runtime clamps *execution* to the machine's available
//! parallelism: requesting more workers than cores changes nothing but
//! the oversubscription overhead, so the extra workers simply aren't used
//! ([`Runtime::threads`] still reports the requested count).
//!
//! # Choosing a thread count
//!
//! [`Runtime::from_env`] reads `TARGAD_THREADS` (falling back to
//! [`std::thread::available_parallelism`]); [`Runtime::new`] pins an exact
//! count; [`Runtime::serial`] is the single-threaded identity. The handle
//! is plain data (`Copy`) — pass it explicitly to whatever needs it.

mod pool;

/// Environment variable consulted by [`Runtime::from_env`].
pub const THREADS_ENV: &str = "TARGAD_THREADS";

/// A raw pointer that may cross thread boundaries. Every use derives
/// disjoint regions from worker indices, so no two workers alias.
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// Accessor, so closures capture the `Sync` wrapper rather than the
    /// raw pointer field itself (disjoint closure capture).
    #[inline]
    fn get(&self) -> *mut T {
        self.0
    }
}

unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// `(start, len)` of worker `w`'s contiguous share of `n` items split
/// across `workers` (the first `n % workers` workers get one extra).
#[inline]
fn worker_share(n: usize, workers: usize, w: usize) -> (usize, usize) {
    let base = n / workers;
    let extra = n % workers;
    (w * base + w.min(extra), base + usize::from(w < extra))
}

/// A handle selecting how many workers execute parallel operations.
///
/// The handle is deliberately tiny and [`Copy`]: embed it in model structs,
/// pass it down call stacks, and never reach for a global.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Runtime {
    threads: usize,
}

impl Default for Runtime {
    /// Same as [`Runtime::from_env`].
    fn default() -> Self {
        Self::from_env()
    }
}

impl Runtime {
    /// A runtime with exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// A single-threaded runtime: every operation runs inline on the
    /// calling thread.
    pub fn serial() -> Self {
        Self { threads: 1 }
    }

    /// A runtime sized from the environment: the `TARGAD_THREADS` variable
    /// if set to a positive integer, otherwise the machine's available
    /// parallelism, otherwise 1.
    ///
    /// A *set but malformed* value (`0`, empty, non-numeric) is a
    /// misconfiguration, not an absence: it emits a
    /// `runtime.threads_invalid` warning through `targad-obs` and falls
    /// back to the serial runtime rather than silently grabbing every
    /// core.
    pub fn from_env() -> Self {
        let threads = match std::env::var(THREADS_ENV) {
            Ok(raw) => match raw.trim().parse::<usize>() {
                Ok(n) if n > 0 => n,
                _ => {
                    targad_obs::warn(
                        "runtime.threads_invalid",
                        format!(
                            "{THREADS_ENV}={raw:?} is not a positive integer; \
                             falling back to 1 worker (serial)"
                        ),
                    );
                    1
                }
            },
            Err(std::env::VarError::NotUnicode(_)) => {
                targad_obs::warn(
                    "runtime.threads_invalid",
                    format!("{THREADS_ENV} is not valid unicode; falling back to 1 worker"),
                );
                1
            }
            Err(std::env::VarError::NotPresent) => pool::host_workers(),
        };
        Self { threads }
    }

    /// The number of workers this runtime uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether operations run inline on the calling thread.
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// A copy of this runtime using at most `max_workers` workers. Callers
    /// use this to impose a work grain — e.g. "at least 64 rows per
    /// worker" — without touching the configured thread count.
    pub fn capped(&self, max_workers: usize) -> Runtime {
        Runtime::new(self.threads.min(max_workers.max(1)))
    }

    /// Workers that will actually execute `work_items` items: the
    /// requested count, clamped to the work size and to the machine's
    /// available parallelism (oversubscribing cores can only slow the
    /// identical result down).
    fn executing_workers(&self, work_items: usize) -> usize {
        self.threads
            .min(work_items)
            .min(pool::host_workers())
            .max(1)
    }

    /// Splits `data` into contiguous runs of whole rows (each `row_len`
    /// elements) and calls `f(first_row, rows)` on each run, in parallel.
    ///
    /// `f` receives the global index of the run's first row plus the
    /// mutable slice holding those rows back-to-back. For the result to be
    /// deterministic across thread counts, `f` must compute each row from
    /// its global row index alone — never from where the chunk boundary
    /// happens to fall.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of `row_len`, or if a
    /// worker closure panics.
    pub fn par_rows<T, F>(&self, data: &mut [T], row_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(row_len > 0, "par_rows: row_len must be positive");
        assert_eq!(data.len() % row_len, 0, "par_rows: data is not whole rows");
        let rows = data.len() / row_len;
        let workers = self.executing_workers(rows);
        if workers <= 1 {
            f(0, data);
            return;
        }
        let ptr = SendPtr(data.as_mut_ptr());
        let job = |w: usize| {
            let (start, take) = worker_share(rows, workers, w);
            // SAFETY: worker shares are disjoint row ranges of `data`,
            // which outlives the dispatch.
            let chunk = unsafe {
                std::slice::from_raw_parts_mut(ptr.get().add(start * row_len), take * row_len)
            };
            f(start, chunk);
        };
        pool::pool().run(workers, &job);
    }

    /// Splits `data` into contiguous chunks, one per worker, and calls
    /// `f(offset, chunk)` on each in parallel. Equivalent to
    /// [`Runtime::par_rows`] with single-element rows.
    pub fn par_chunks<T, F>(&self, data: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        if data.is_empty() {
            return;
        }
        self.par_rows(data, 1, f);
    }

    /// Computes `f(i)` for every `i in 0..len` in parallel and returns the
    /// results in index order.
    ///
    /// Each worker owns a contiguous index range and writes results
    /// straight into their final slots, so the returned vector is
    /// identical at every thread count as long as `f` depends only on its
    /// index argument.
    ///
    /// # Panics
    /// Panics if a worker closure panics.
    pub fn par_map_indexed<T, F>(&self, len: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.executing_workers(len);
        if workers <= 1 {
            return (0..len).map(f).collect();
        }
        let mut out: Vec<std::mem::MaybeUninit<T>> = Vec::with_capacity(len);
        out.resize_with(len, std::mem::MaybeUninit::uninit);
        let ptr = SendPtr(out.as_mut_ptr());
        let job = |w: usize| {
            let (start, take) = worker_share(len, workers, w);
            for i in start..start + take {
                // SAFETY: worker shares are disjoint index ranges.
                unsafe { ptr.get().add(i).write(std::mem::MaybeUninit::new(f(i))) };
            }
        };
        pool::pool().run(workers, &job);
        // SAFETY: the dispatch returned normally, so every slot was
        // written exactly once. (On a worker panic we unwind above and the
        // initialized elements leak rather than double-drop.)
        unsafe {
            let mut out = std::mem::ManuallyDrop::new(out);
            Vec::from_raw_parts(out.as_mut_ptr().cast::<T>(), len, out.capacity())
        }
    }

    /// Runs `f(shard, &mut shards[shard], &mut states[worker])` for every
    /// shard, in parallel, with a contiguous run of shards per worker.
    ///
    /// This is the data-parallel training primitive: `shards` holds one
    /// disjoint output buffer per **shard** (a fixed, worker-count-
    /// independent partition of the work — gradient accumulators, loss
    /// partials), while `states` holds one scratch value per **worker**
    /// (a pooled tape). Because every shard is computed in full by exactly
    /// one worker and shard boundaries never depend on the worker count,
    /// the shard buffers are bit-identical at any thread count; the caller
    /// then reduces them in ascending shard order for a deterministic sum.
    ///
    /// At most `states.len()` workers execute (serially inline when only
    /// one is available — every shard is still processed individually, in
    /// ascending order, so the sharded code path is identical).
    ///
    /// # Panics
    /// Panics if `states` is empty while `shards` is not, or if a worker
    /// closure panics.
    pub fn par_shards<T, S, F>(&self, shards: &mut [T], states: &mut [S], f: F)
    where
        T: Send,
        S: Send,
        F: Fn(usize, &mut T, &mut S) + Sync,
    {
        let n = shards.len();
        if n == 0 {
            return;
        }
        assert!(!states.is_empty(), "par_shards: need at least one state");
        let workers = self.executing_workers(n).min(states.len());
        if workers <= 1 {
            let state = &mut states[0];
            for (s, shard) in shards.iter_mut().enumerate() {
                f(s, shard, state);
            }
            return;
        }
        let shard_ptr = SendPtr(shards.as_mut_ptr());
        let state_ptr = SendPtr(states.as_mut_ptr());
        let job = |w: usize| {
            let (start, take) = worker_share(n, workers, w);
            // SAFETY: state `w` is touched only by worker `w`; shard
            // ranges are disjoint across workers.
            let state = unsafe { &mut *state_ptr.get().add(w) };
            for s in start..start + take {
                let shard = unsafe { &mut *shard_ptr.get().add(s) };
                f(s, shard, state);
            }
        };
        pool::pool().run(workers, &job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn new_clamps_to_one_and_serial_is_one() {
        assert_eq!(Runtime::new(0).threads(), 1);
        assert_eq!(Runtime::new(6).threads(), 6);
        assert!(Runtime::serial().is_serial());
        assert!(!Runtime::new(2).is_serial());
    }

    #[test]
    fn capped_limits_but_never_zeroes() {
        assert_eq!(Runtime::new(8).capped(3).threads(), 3);
        assert_eq!(Runtime::new(2).capped(5).threads(), 2);
        assert_eq!(Runtime::new(8).capped(0).threads(), 1);
    }

    #[test]
    fn par_map_indexed_matches_serial_at_any_worker_count() {
        let expect: Vec<u64> = (0..1013u64).map(|i| i * i + 7).collect();
        for workers in [1, 2, 3, 7, 16, 2000] {
            let rt = Runtime::new(workers);
            let got = rt.par_map_indexed(1013, |i| (i as u64) * (i as u64) + 7);
            assert_eq!(got, expect, "workers = {workers}");
        }
    }

    #[test]
    fn par_map_indexed_handles_empty_and_single() {
        let rt = Runtime::new(4);
        assert!(rt.par_map_indexed(0, |i| i).is_empty());
        assert_eq!(rt.par_map_indexed(1, |i| i + 10), vec![10]);
    }

    #[test]
    fn par_map_indexed_moves_nontrivial_values() {
        let rt = Runtime::new(3);
        let got = rt.par_map_indexed(97, |i| vec![i; i % 5]);
        for (i, v) in got.iter().enumerate() {
            assert_eq!(v.len(), i % 5);
            assert!(v.iter().all(|&x| x == i));
        }
    }

    #[test]
    fn par_rows_partitions_exactly_and_uses_global_indices() {
        let row_len = 3;
        let rows = 29;
        for workers in [1, 2, 7, 64] {
            let rt = Runtime::new(workers);
            let mut data = vec![0usize; rows * row_len];
            rt.par_rows(&mut data, row_len, |first_row, chunk| {
                for (r, row) in chunk.chunks_mut(row_len).enumerate() {
                    for (c, cell) in row.iter_mut().enumerate() {
                        *cell = (first_row + r) * 100 + c;
                    }
                }
            });
            let expect: Vec<usize> = (0..rows)
                .flat_map(|r| (0..row_len).map(move |c| r * 100 + c))
                .collect();
            assert_eq!(data, expect, "workers = {workers}");
        }
    }

    #[test]
    fn par_chunks_touches_every_element_once() {
        let rt = Runtime::new(5);
        let mut data = vec![0u32; 101];
        let calls = AtomicUsize::new(0);
        rt.par_chunks(&mut data, |offset, chunk| {
            calls.fetch_add(1, Ordering::SeqCst);
            for (i, v) in chunk.iter_mut().enumerate() {
                *v += (offset + i) as u32;
            }
        });
        // Execution is clamped to the machine's parallelism, so anywhere
        // from one chunk (single-core host) to five is legal — but every
        // element must be produced exactly once either way.
        let calls = calls.load(Ordering::SeqCst);
        assert!((1..=5).contains(&calls), "got {calls} chunks");
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u32));
    }

    #[test]
    fn par_chunks_on_empty_slice_is_a_no_op() {
        let rt = Runtime::new(4);
        let mut data: [u8; 0] = [];
        rt.par_chunks(&mut data, |_, _| panic!("must not be called"));
    }

    #[test]
    #[should_panic(expected = "whole rows")]
    fn par_rows_rejects_ragged_data() {
        Runtime::serial().par_rows(&mut [0u8; 7], 3, |_, _| {});
    }

    #[test]
    fn from_env_is_at_least_one() {
        assert!(Runtime::from_env().threads() >= 1);
    }

    /// One test covers all malformed values sequentially: env vars are
    /// process-global, so splitting these into separate test fns would
    /// race. The co-resident `from_env_is_at_least_one` holds under every
    /// value this test sets.
    #[test]
    fn from_env_rejects_malformed_values_with_a_warning() {
        let drain_codes = || {
            targad_obs::take_warnings()
                .into_iter()
                .map(|w| w.code)
                .collect::<Vec<_>>()
        };
        drain_codes();
        for bad in ["0", "", "  ", "abc", "-3", "4.5"] {
            std::env::set_var(THREADS_ENV, bad);
            let rt = Runtime::from_env();
            assert_eq!(rt.threads(), 1, "value {bad:?} must fall back to serial");
            assert!(
                drain_codes().contains(&"runtime.threads_invalid"),
                "value {bad:?} must emit runtime.threads_invalid"
            );
        }
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(Runtime::from_env().threads(), 3);
        std::env::remove_var(THREADS_ENV);
        assert_eq!(Runtime::from_env().threads(), pool::host_workers());
        assert!(
            !drain_codes().contains(&"runtime.threads_invalid"),
            "valid and unset values must not warn"
        );
    }

    #[test]
    fn par_shards_visits_every_shard_once_in_its_own_buffer() {
        for workers in [1, 2, 3, 7, 16] {
            let rt = Runtime::new(workers);
            let mut shards = vec![0usize; 11];
            let mut states = vec![0usize; workers];
            rt.par_shards(&mut shards, &mut states, |s, shard, state| {
                *shard += s * 10 + 1;
                *state += 1;
            });
            let expect: Vec<usize> = (0..11).map(|s| s * 10 + 1).collect();
            assert_eq!(shards, expect, "workers = {workers}");
            let visits: usize = states.iter().sum();
            assert_eq!(visits, 11, "workers = {workers}");
        }
    }

    #[test]
    fn par_shards_results_are_worker_count_invariant() {
        let run = |workers: usize| {
            let rt = Runtime::new(workers);
            let mut shards = vec![0.0f64; 23];
            let mut states = vec![(); workers];
            rt.par_shards(&mut shards, &mut states, |s, shard, ()| {
                *shard = (s as f64 + 0.1).sin() * 1e3;
            });
            shards
        };
        let serial = run(1);
        for workers in [2, 5, 23, 100] {
            assert_eq!(run(workers), serial, "workers = {workers}");
        }
    }

    #[test]
    fn par_shards_with_no_shards_is_a_no_op() {
        let rt = Runtime::new(4);
        let mut shards: [u8; 0] = [];
        let mut states: [u8; 0] = [];
        rt.par_shards(&mut shards, &mut states, |_, _, _| {
            panic!("must not be called")
        });
    }

    #[test]
    fn nested_parallel_calls_run_inline_and_stay_correct() {
        let rt = Runtime::new(4);
        let outer = rt.par_map_indexed(8, |i| {
            let inner = rt.par_map_indexed(5, move |j| i * 10 + j);
            inner.iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..8).map(|i| (0..5).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(outer, expect);
    }
}
