//! The persistent worker pool behind every [`crate::Runtime`] operation.
//!
//! Workers are spawned once (lazily, on the first multi-worker dispatch)
//! and then parked on a condvar between jobs. Dispatching a job is
//! **allocation-free**: the job is published as a lifetime-erased
//! `&dyn Fn(usize)` pointer in a mutex-protected slot, workers are woken
//! with `notify_all`, and completion is signalled by counting participants
//! down under the same mutex. This matters for the zero-allocation
//! training contract — a scoped-thread spawn per step would heap-allocate
//! join handles and spawn packets on every optimizer step.
//!
//! Only one dispatch runs at a time. A caller that finds the pool busy
//! (another thread mid-dispatch, or a nested parallel call from inside a
//! job) runs its partition inline on the calling thread instead of
//! blocking; results are unchanged because every partition of the same
//! work is bit-identical by the runtime's determinism contract.

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock, PoisonError, TryLockError};

/// The machine's available parallelism (cached; 1 if unknown).
pub(crate) fn host_workers() -> usize {
    static HOST: OnceLock<usize> = OnceLock::new();
    *HOST.get_or_init(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// The process-wide pool; spawning happens on first use.
pub(crate) fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool::spawn(host_workers() - 1))
}

/// A published job: a lifetime-erased pointer to the dispatch closure.
/// Valid strictly until the round's last participant decrements `active`;
/// `Pool::run` does not return (or unwind) before that.
#[derive(Clone, Copy)]
struct RawJob(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared across workers by reference) and
// outlives every dereference — see `RawJob` and `Pool::run`.
unsafe impl Send for RawJob {}

struct Slot {
    /// Bumped once per dispatched round; workers wait for a change.
    generation: u64,
    job: Option<RawJob>,
    /// Participating workers this round (index 0 is the dispatching
    /// thread; pool workers 1..workers join in).
    workers: usize,
    /// Pool workers still running the current round.
    active: usize,
    /// Set when any worker's closure panicked this round.
    panicked: bool,
}

struct Shared {
    slot: Mutex<Slot>,
    /// Signals a new generation to parked workers.
    work: Condvar,
    /// Signals `active == 0` to the dispatching thread.
    done: Condvar,
}

pub(crate) struct Pool {
    shared: &'static Shared,
    /// Number of parked worker threads (worker indices `1..=capacity`).
    capacity: usize,
    /// Held for the whole of [`Pool::run`]; `try_lock` failure means the
    /// pool is busy and the caller runs inline.
    dispatch: Mutex<()>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Pool {
    fn spawn(capacity: usize) -> Self {
        let shared: &'static Shared = Box::leak(Box::new(Shared {
            slot: Mutex::new(Slot {
                generation: 0,
                job: None,
                workers: 0,
                active: 0,
                panicked: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        }));
        for index in 1..=capacity {
            std::thread::Builder::new()
                .name(format!("targad-worker-{index}"))
                .spawn(move || worker_loop(shared, index))
                .expect("spawn runtime worker");
        }
        Self {
            shared,
            capacity,
            dispatch: Mutex::new(()),
        }
    }

    /// Highest worker count a dispatch can use (pool workers + caller).
    pub(crate) fn max_workers(&self) -> usize {
        self.capacity + 1
    }

    /// Runs `f(w)` for every worker index `w in 0..workers`, index 0 on
    /// the calling thread and the rest on pool workers. Returns only after
    /// every index completed; panics with "runtime worker panicked" if any
    /// pool worker's closure panicked (the caller's own panic is resumed
    /// as-is). Falls back to running all indices inline, sequentially,
    /// when the pool is busy or too small — same results either way.
    pub(crate) fn run(&self, workers: usize, f: &(dyn Fn(usize) + Sync)) {
        if workers <= 1 {
            if workers == 1 {
                f(0);
            }
            return;
        }
        let _guard = match self.dispatch.try_lock() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => {
                targad_obs::metrics::POOL_INLINE_RUNS.inc();
                for w in 0..workers {
                    f(w);
                }
                return;
            }
        };
        if workers > self.max_workers() {
            targad_obs::metrics::POOL_INLINE_RUNS.inc();
            for w in 0..workers {
                f(w);
            }
            return;
        }
        targad_obs::metrics::POOL_JOBS.inc();
        targad_obs::metrics::POOL_WORKERS.set(workers as u64);

        // SAFETY: erasing the borrow's lifetime is sound because this
        // function blocks until `active == 0`, i.e. until no worker can
        // still dereference the pointer.
        let raw = RawJob(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + '_),
                *const (dyn Fn(usize) + Sync + 'static),
            >(f as *const _)
        });
        {
            let mut slot = lock(&self.shared.slot);
            slot.job = Some(raw);
            slot.workers = workers;
            slot.active = workers - 1;
            slot.panicked = false;
            slot.generation = slot.generation.wrapping_add(1);
        }
        self.shared.work.notify_all();

        let own = catch_unwind(AssertUnwindSafe(|| f(0)));

        // Time the dispatcher's wait for stragglers (its own share is
        // done): the `pool.queue_wait_ns` histogram shows how well work is
        // balanced across workers. Clock reads only when telemetry is on.
        let wait_start = targad_obs::enabled().then(std::time::Instant::now);
        let worker_panicked = {
            let mut slot = lock(&self.shared.slot);
            while slot.active > 0 {
                slot = self
                    .shared
                    .done
                    .wait(slot)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            slot.job = None;
            std::mem::replace(&mut slot.panicked, false)
        };
        if let Some(start) = wait_start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            targad_obs::metrics::POOL_QUEUE_WAIT_NS.record(ns);
        }
        if let Err(payload) = own {
            resume_unwind(payload);
        }
        assert!(!worker_panicked, "runtime worker panicked");
    }
}

fn worker_loop(shared: &'static Shared, index: usize) {
    let mut seen = 0u64;
    loop {
        let (job, workers) = {
            let mut slot = lock(&shared.slot);
            while slot.generation == seen {
                slot = shared
                    .work
                    .wait(slot)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            seen = slot.generation;
            (slot.job, slot.workers)
        };
        let Some(job) = job else { continue };
        if index >= workers {
            continue;
        }
        // SAFETY: we participate in the current round, so the dispatcher
        // is blocked in `Pool::run` until we decrement `active` below;
        // the closure outlives this call.
        let result = catch_unwind(AssertUnwindSafe(|| (unsafe { &*job.0 })(index)));
        let mut slot = lock(&shared.slot);
        if result.is_err() {
            slot.panicked = true;
        }
        slot.active -= 1;
        if slot.active == 0 {
            shared.done.notify_all();
        }
    }
}
