//! The dynamic micro-batcher.
//!
//! Concurrent callers each submit a handful of rows; a single worker
//! thread coalesces whatever is queued into fused `ScoreEngine` passes
//! (`targad-nn`) under a
//! max-wait/max-batch policy: the first queued request starts a batch
//! window of [`ServeConfig::max_queue_wait`](crate::ServeConfig), and the
//! batch executes as soon as [`ServeConfig::max_batch`](crate::ServeConfig)
//! rows are queued or the window closes — whichever comes first. Lightly
//! loaded servers thus stay at single-request latency while loaded ones
//! amortize the batched-inference advantage across callers.
//!
//! Every submission resolves its tenant to a concrete
//! `(Arc<ModelSnapshot>, generation)` pair *on the request thread*, so a
//! queued job owns the model it will score on: a hot-swap or an LRU
//! eviction between enqueue and execution can drop the registry's
//! reference but never tear the job. The worker groups coalesced jobs by
//! that pair and runs one fused pass per distinct model — rows of
//! different tenants batch independently but ride the same window.
//!
//! The queue is bounded by row count: submissions that would exceed
//! [`ServeConfig::queue_depth`](crate::ServeConfig) are rejected
//! immediately with [`ServeError::Overloaded`] (backpressure beats
//! unbounded latency).
//!
//! Coalescing never changes results: the engine's forward pass and the
//! verdict kernel are strictly per-row, so a row scored in any coalesced
//! batch is bit-identical to the same row scored alone — the
//! `micro_batching.rs` integration tests pin this down.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use targad_core::{EnginePrecision, OodStrategy, TargAdError, VerdictClass};
use targad_linalg::Matrix;
use targad_obs::{labeled, metrics, sketch, LabelId, RequestTrace, ServePhase};
use targad_runtime::Runtime;

use crate::config::{ServeConfig, ServeError};
use crate::registry::{ModelRegistry, ModelSnapshot, DEFAULT_TENANT};

/// One row's serve-path result: the full verdict plus the registry
/// generation of the model that produced it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoredRow {
    /// Eq. 9 target-anomaly score.
    pub score: f64,
    /// Three-way §III-C class.
    pub class: VerdictClass,
    /// OOD strategy the request selected.
    pub strategy: OodStrategy,
    /// Calibrated threshold the decision used.
    pub threshold: f64,
    /// Registry generation of the scoring model.
    pub generation: u64,
}

/// Aggregate batcher counters since this batcher started.
///
/// Backed by the **ungated** `serve.*` metrics in `targad-obs` — the same
/// numbers `/metrics` exports — as deltas against baselines captured at
/// [`MicroBatcher::start`], so the stats, the exposition endpoints, and
/// the bench can never drift apart. `max_fill` is the one exception: a
/// high-water mark has no meaningful delta, so it stays instance-scoped.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatcherStats {
    /// Micro-batches executed (one per distinct model per window).
    pub batches: u64,
    /// Rows scored.
    pub rows: u64,
    /// Largest batch fill achieved by *this* batcher instance.
    pub max_fill: u64,
}

/// One request's scored rows plus the trace it accumulated end to end.
#[derive(Clone, Debug, PartialEq)]
pub struct SubmitOutcome {
    /// One [`ScoredRow`] per submitted row, in order.
    pub rows: Vec<ScoredRow>,
    /// Phase timings (inert unless telemetry was enabled at submit).
    pub trace: RequestTrace,
    /// The interned per-tenant label the request was accounted under.
    pub tenant: LabelId,
}

struct Job {
    /// Row-major `n x dims` features.
    data: Vec<f64>,
    n: usize,
    strategy: OodStrategy,
    /// Calibrated threshold, resolved against `snapshot` at submit time.
    tau: f64,
    /// The model this job scores on, pinned at submit time.
    snapshot: Arc<ModelSnapshot>,
    generation: u64,
    enqueued: Instant,
    /// Interned tenant label for per-tenant accounting (`Copy` — the hot
    /// path never touches the tenant string again).
    tenant: LabelId,
    /// Request trace; phases recorded by the worker ride back with the
    /// reply.
    trace: RequestTrace,
    reply: Sender<Result<(Vec<ScoredRow>, RequestTrace), ServeError>>,
}

struct Shared {
    /// Rows currently queued (the backpressure bound).
    depth: AtomicUsize,
    /// Instance-scoped high-water batch fill (see [`BatcherStats`]).
    max_fill: AtomicU64,
    /// Monotonic nanos (since `started`) of the previous submit, for the
    /// `serve.arrival_gap_ns` histogram; 0 = no submit yet.
    last_arrival_ns: AtomicU64,
}

/// The coalescing scorer. One instance drives one worker thread; clones of
/// the submission side are handed to every connection handler.
pub struct MicroBatcher {
    tx: Mutex<Option<Sender<Job>>>,
    shared: Arc<Shared>,
    registry: Arc<ModelRegistry>,
    queue_depth: usize,
    worker: Mutex<Option<JoinHandle<()>>>,
    /// Monotonic origin for arrival-gap timestamps.
    started: Instant,
    /// Global-counter baselines captured at start; [`MicroBatcher::stats`]
    /// reports deltas against these.
    base_batches: u64,
    base_rows: u64,
}

impl MicroBatcher {
    /// Starts the worker thread scoring against `registry` on `runtime`.
    pub fn start(config: &ServeConfig, registry: Arc<ModelRegistry>, runtime: Runtime) -> Self {
        let (tx, rx) = channel::<Job>();
        let shared = Arc::new(Shared {
            depth: AtomicUsize::new(0),
            max_fill: AtomicU64::new(0),
            last_arrival_ns: AtomicU64::new(0),
        });
        let worker_shared = Arc::clone(&shared);
        let precision = registry.precision();
        let max_batch = config.max_batch;
        let max_wait = config.max_queue_wait;
        let worker = std::thread::Builder::new()
            .name("targad-serve-batcher".into())
            .spawn(move || {
                worker_loop(rx, worker_shared, runtime, precision, max_batch, max_wait);
            })
            .expect("spawn batcher worker");
        // Pre-intern the default tenant so the very first request's label
        // resolution is already a lock-free lookup.
        labeled::tenants().intern(DEFAULT_TENANT);
        Self {
            tx: Mutex::new(Some(tx)),
            shared,
            registry,
            queue_depth: config.queue_depth,
            worker: Mutex::new(Some(worker)),
            started: Instant::now(),
            base_batches: metrics::SERVE_BATCHES.get(),
            base_rows: metrics::SERVE_ROWS.get(),
        }
    }

    /// Scores `n` rows for the default tenant
    /// ([`MicroBatcher::submit_for`] with no tenant).
    ///
    /// # Errors
    /// As [`MicroBatcher::submit_for`].
    pub fn submit(
        &self,
        data: Vec<f64>,
        n: usize,
        dims: usize,
        strategy: OodStrategy,
    ) -> Result<Vec<ScoredRow>, ServeError> {
        self.submit_for(None, data, n, dims, strategy)
    }

    /// Scores `n` rows (row-major `data`, `dims` columns each) for
    /// `tenant` under `strategy`, blocking until the coalesced batch
    /// containing them has executed. The tenant resolves to its model on
    /// *this* thread — faulting it in from the snapshot directory if
    /// needed — and the job owns that model until it is answered.
    ///
    /// # Errors
    /// [`ServeError::Overloaded`] under backpressure,
    /// [`ServeError::ShuttingDown`] after [`MicroBatcher::shutdown`],
    /// tenant-resolution errors ([`ServeError::UnknownTenant`],
    /// [`ServeError::BudgetExceeded`], [`ServeError::BadRequest`]), and
    /// [`ServeError::Model`] for per-request model errors (dimension
    /// mismatch, uncalibrated strategy).
    pub fn submit_for(
        &self,
        tenant: Option<&str>,
        data: Vec<f64>,
        n: usize,
        dims: usize,
        strategy: OodStrategy,
    ) -> Result<Vec<ScoredRow>, ServeError> {
        self.submit_traced(tenant, data, n, dims, strategy, RequestTrace::begin())
            .map(|outcome| outcome.rows)
    }

    /// [`MicroBatcher::submit_for`] with an explicit request trace: the
    /// trace rides the job through the queue, the coalescing worker, and
    /// the engine pass, and comes back with the per-phase nanoseconds
    /// filled in (when it was active). This is the serve front end's entry
    /// point; per-tenant request/row counters, the arrival-gap and
    /// rows-per-request histograms, and the score-distribution sketches
    /// are all recorded here.
    ///
    /// # Errors
    /// As [`MicroBatcher::submit_for`].
    pub fn submit_traced(
        &self,
        tenant: Option<&str>,
        data: Vec<f64>,
        n: usize,
        dims: usize,
        strategy: OodStrategy,
        trace: RequestTrace,
    ) -> Result<SubmitOutcome, ServeError> {
        assert_eq!(data.len(), n * dims, "submit: data length mismatch");
        if n == 0 {
            return Ok(SubmitOutcome {
                rows: Vec::new(),
                trace,
                tenant: labeled::tenants().intern(DEFAULT_TENANT),
            });
        }
        let (snapshot, generation) = self.registry.resolve(tenant)?;
        // Intern only after a successful resolve, so unknown or invalid
        // tenant names can never consume one of the 64 label slots.
        let label = labeled::tenants().intern(tenant.unwrap_or(DEFAULT_TENANT));
        let expected = snapshot.classifier.input_dim();
        if dims != expected {
            labeled::TENANT_ERRORS.inc(label);
            return Err(TargAdError::DimMismatch {
                expected,
                got: dims,
            }
            .into());
        }
        let Some(tau) = snapshot.thresholds.get(strategy) else {
            labeled::TENANT_ERRORS.inc(label);
            return Err(TargAdError::NotCalibrated { strategy }.into());
        };
        self.record_arrival(n);
        // Optimistically claim queue room; undo on rejection. The bound is
        // approximate under races by at most one in-flight submission per
        // caller thread, which is exactly the slack a bounded queue needs.
        let claimed = self.shared.depth.fetch_add(n, Ordering::AcqRel) + n;
        if claimed > self.queue_depth {
            self.shared.depth.fetch_sub(n, Ordering::AcqRel);
            metrics::SERVE_REJECTED.inc_always();
            labeled::TENANT_ERRORS.inc(label);
            return Err(ServeError::Overloaded);
        }
        metrics::SERVE_QUEUE_DEPTH.set_always(claimed as u64);
        let (reply_tx, reply_rx) = channel();
        let job = Job {
            data,
            n,
            strategy,
            tau,
            snapshot,
            generation,
            enqueued: Instant::now(),
            tenant: label,
            trace,
            reply: reply_tx,
        };
        let sent = match self.tx.lock().expect("batcher lock poisoned").as_ref() {
            Some(tx) => tx.send(job).is_ok(),
            None => false,
        };
        if !sent {
            self.shared.depth.fetch_sub(n, Ordering::AcqRel);
            labeled::TENANT_ERRORS.inc(label);
            return Err(ServeError::ShuttingDown);
        }
        metrics::SERVE_REQUESTS.inc_always();
        labeled::TENANT_REQUESTS.inc(label);
        labeled::TENANT_ROWS.add(label, n as u64);
        labeled::TENANT_REQUEST_ROWS.record(label, n as u64);
        match reply_rx
            .recv()
            .unwrap_or(Err(ServeError::Io("batcher worker died".into())))
        {
            Ok((rows, trace)) => Ok(SubmitOutcome {
                rows,
                trace,
                tenant: label,
            }),
            Err(e) => {
                labeled::TENANT_ERRORS.inc(label);
                Err(e)
            }
        }
    }

    /// Records the gap since the previous submit and this request's row
    /// count into the workload-profile histograms.
    fn record_arrival(&self, n: usize) {
        let now_ns = u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let prev = self.shared.last_arrival_ns.swap(now_ns, Ordering::AcqRel);
        if prev != 0 && now_ns > prev {
            metrics::SERVE_ARRIVAL_GAP_NS.record_always(now_ns - prev);
        }
        metrics::SERVE_REQUEST_ROWS.record_always(n as u64);
    }

    /// Rows currently queued.
    pub fn depth(&self) -> usize {
        self.shared.depth.load(Ordering::Acquire)
    }

    /// Aggregate counters since this batcher started (see
    /// [`BatcherStats`]).
    pub fn stats(&self) -> BatcherStats {
        BatcherStats {
            batches: metrics::SERVE_BATCHES
                .get()
                .saturating_sub(self.base_batches),
            rows: metrics::SERVE_ROWS.get().saturating_sub(self.base_rows),
            max_fill: self.shared.max_fill.load(Ordering::Acquire),
        }
    }

    /// Stops accepting work, drains every queued job (no request is ever
    /// dropped), and joins the worker.
    pub fn shutdown(&self) {
        drop(self.tx.lock().expect("batcher lock poisoned").take());
        if let Some(worker) = self.worker.lock().expect("batcher lock poisoned").take() {
            let _ = worker.join();
        }
    }
}

impl Drop for MicroBatcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(
    rx: Receiver<Job>,
    shared: Arc<Shared>,
    runtime: Runtime,
    precision: EnginePrecision,
    max_batch: usize,
    max_wait: std::time::Duration,
) {
    loop {
        // Block for the batch's first job; a disconnect here means every
        // sender is gone and the queue is fully drained.
        let first = match rx.recv() {
            Ok(job) => job,
            Err(_) => break,
        };
        let mut jobs = vec![first];
        let mut rows = jobs[0].n;
        // Whatever queued up while the previous batch executed coalesces
        // for free — drain it before consulting the clock, or a backlogged
        // first job (enqueued longer than max_wait ago) would execute
        // alone and the batcher would degrade to one row per batch exactly
        // when batching matters most. Jobs are never split, so a multi-row
        // job may overshoot max_batch; the policy bounds when we *stop
        // adding*, not the final fill.
        while rows < max_batch {
            match rx.try_recv() {
                Ok(job) => {
                    rows += job.n;
                    jobs.push(job);
                }
                Err(_) => break,
            }
        }
        // Under-filled: wait out the remainder of the first job's window
        // for stragglers.
        let deadline = jobs[0].enqueued + max_wait;
        while rows < max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(job) => {
                    rows += job.n;
                    jobs.push(job);
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        // One fused pass per distinct (model, generation) in the window:
        // multi-tenant traffic batches per model, and a job enqueued just
        // before a hot-swap still scores on the snapshot it resolved.
        let mut groups: Vec<Vec<Job>> = Vec::new();
        for job in jobs {
            match groups.iter_mut().find(|g| {
                Arc::ptr_eq(&g[0].snapshot, &job.snapshot) && g[0].generation == job.generation
            }) {
                Some(group) => group.push(job),
                None => groups.push(vec![job]),
            }
        }
        for group in groups {
            execute_group(group, &shared, &runtime, precision);
        }
    }
}

/// Scores one coalesced same-model batch and distributes per-job replies.
fn execute_group(
    mut jobs: Vec<Job>,
    shared: &Shared,
    runtime: &Runtime,
    precision: EnginePrecision,
) {
    let started = Instant::now();
    let snapshot: Arc<ModelSnapshot> = Arc::clone(&jobs[0].snapshot);
    let generation = jobs[0].generation;
    let clf = &snapshot.classifier;
    let dims = clf.input_dim();

    let batch_rows: usize = jobs.iter().map(|job| job.n).sum();
    let mut data = Vec::with_capacity(batch_rows * dims);
    let mut row_params = Vec::with_capacity(batch_rows);
    for job in &mut jobs {
        let wait_ns = elapsed_ns(job.enqueued);
        metrics::SERVE_QUEUE_WAIT_NS.record_always(wait_ns);
        job.trace.add(ServePhase::QueueWait, wait_ns);
        data.extend_from_slice(&job.data);
        row_params.extend(std::iter::repeat_n((job.strategy, job.tau), job.n));
    }
    // Batch-level phase wall times: every job in the group shares the
    // window, so each trace gets the whole coalesce/engine duration.
    let coalesce_ns = elapsed_ns(started);
    let x = Matrix::from_vec(batch_rows, dims, data);
    // Precision is a property of the registry (weights were cast/packed at
    // admit or swap time under F32), so every batch against a snapshot
    // scores at the precision that snapshot was prepared for.
    let engine_started = Instant::now();
    let pairs = clf.verdicts_rt_with_prec(&x, runtime, precision, |r| row_params[r]);
    let engine_ns = elapsed_ns(engine_started);

    // Stats land before replies go out, so a caller that observes its
    // result (and anything joining on it) also observes the counters.
    shared
        .max_fill
        .fetch_max(batch_rows as u64, Ordering::AcqRel);
    metrics::SERVE_BATCHES.inc_always();
    metrics::SERVE_ROWS.add_always(batch_rows as u64);
    metrics::SERVE_BATCH_FILL.record_always(batch_rows as u64);

    let mut offset = 0;
    for job in jobs {
        let scored: Vec<ScoredRow> = pairs[offset..offset + job.n]
            .iter()
            .map(|&(score, class)| ScoredRow {
                score,
                class,
                strategy: job.strategy,
                threshold: job.tau,
                generation,
            })
            .collect();
        offset += job.n;
        for row in &scored {
            sketch::SERVE_SCORES.record(row.score);
            sketch::TENANT_SCORES.record(job.tenant, row.score);
        }
        let mut trace = job.trace;
        trace.add(ServePhase::Coalesce, coalesce_ns);
        trace.add(ServePhase::Engine, engine_ns);
        finish_job(shared, &job, Ok((scored, trace)));
    }
    metrics::SERVE_BATCH_SERVICE_NS.record_always(elapsed_ns(started));
}

/// Sends a job's reply and releases its queue-depth claim.
fn finish_job(
    shared: &Shared,
    job: &Job,
    result: Result<(Vec<ScoredRow>, RequestTrace), ServeError>,
) {
    let depth = shared.depth.fetch_sub(job.n, Ordering::AcqRel) - job.n;
    metrics::SERVE_QUEUE_DEPTH.set_always(depth as u64);
    // A caller that gave up (dropped its receiver) is not an error.
    let _ = job.reply.send(result);
}

fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}
