//! The dynamic micro-batcher.
//!
//! Concurrent callers each submit a handful of rows; a single worker
//! thread coalesces whatever is queued into one fused `ScoreEngine` pass
//! (`targad-nn`) under a
//! max-wait/max-batch policy: the first queued request starts a batch
//! window of [`ServeConfig::max_queue_wait`](crate::ServeConfig), and the
//! batch executes as soon as [`ServeConfig::max_batch`](crate::ServeConfig)
//! rows are queued or the window closes — whichever comes first. Lightly
//! loaded servers thus stay at single-request latency while loaded ones
//! amortize the batched-inference advantage across callers.
//!
//! The queue is bounded by row count: submissions that would exceed
//! [`ServeConfig::queue_depth`](crate::ServeConfig) are rejected
//! immediately with [`ServeError::Overloaded`] (backpressure beats
//! unbounded latency).
//!
//! Coalescing never changes results: the engine's forward pass and the
//! verdict kernel are strictly per-row, so a row scored in any coalesced
//! batch is bit-identical to the same row scored alone — the
//! `micro_batching.rs` integration tests pin this down.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use targad_core::{OodStrategy, TargAdError, VerdictClass};
use targad_linalg::Matrix;
use targad_obs::metrics;
use targad_runtime::Runtime;

use crate::config::{ServeConfig, ServeError};
use crate::registry::ModelRegistry;

/// One row's serve-path result: the full verdict plus the registry
/// generation of the model that produced it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoredRow {
    /// Eq. 9 target-anomaly score.
    pub score: f64,
    /// Three-way §III-C class.
    pub class: VerdictClass,
    /// OOD strategy the request selected.
    pub strategy: OodStrategy,
    /// Calibrated threshold the decision used.
    pub threshold: f64,
    /// Registry generation of the scoring model.
    pub generation: u64,
}

/// Aggregate batcher counters, independent of the gated `targad-obs`
/// registry (always on; the bench reads these).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatcherStats {
    /// Micro-batches executed.
    pub batches: u64,
    /// Rows scored.
    pub rows: u64,
    /// Largest batch fill achieved.
    pub max_fill: u64,
}

struct Job {
    /// Row-major `n x dims` features.
    data: Vec<f64>,
    n: usize,
    dims: usize,
    strategy: OodStrategy,
    enqueued: Instant,
    reply: Sender<Result<Vec<ScoredRow>, ServeError>>,
}

struct Shared {
    /// Rows currently queued (the backpressure bound).
    depth: AtomicUsize,
    batches: AtomicU64,
    rows: AtomicU64,
    max_fill: AtomicU64,
}

/// The coalescing scorer. One instance drives one worker thread; clones of
/// the submission side are handed to every connection handler.
pub struct MicroBatcher {
    tx: Mutex<Option<Sender<Job>>>,
    shared: Arc<Shared>,
    queue_depth: usize,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl MicroBatcher {
    /// Starts the worker thread scoring against `registry` on `runtime`.
    pub fn start(config: &ServeConfig, registry: Arc<ModelRegistry>, runtime: Runtime) -> Self {
        let (tx, rx) = channel::<Job>();
        let shared = Arc::new(Shared {
            depth: AtomicUsize::new(0),
            batches: AtomicU64::new(0),
            rows: AtomicU64::new(0),
            max_fill: AtomicU64::new(0),
        });
        let worker_shared = Arc::clone(&shared);
        let max_batch = config.max_batch;
        let max_wait = config.max_queue_wait;
        let worker = std::thread::Builder::new()
            .name("targad-serve-batcher".into())
            .spawn(move || {
                worker_loop(rx, worker_shared, registry, runtime, max_batch, max_wait);
            })
            .expect("spawn batcher worker");
        Self {
            tx: Mutex::new(Some(tx)),
            shared,
            queue_depth: config.queue_depth,
            worker: Mutex::new(Some(worker)),
        }
    }

    /// Scores `n` rows (row-major `data`, `dims` columns each) under
    /// `strategy`, blocking until the coalesced batch containing them has
    /// executed.
    ///
    /// # Errors
    /// [`ServeError::Overloaded`] under backpressure,
    /// [`ServeError::ShuttingDown`] after [`MicroBatcher::shutdown`], and
    /// [`ServeError::Model`] for per-request model errors (dimension
    /// mismatch, uncalibrated strategy).
    pub fn submit(
        &self,
        data: Vec<f64>,
        n: usize,
        dims: usize,
        strategy: OodStrategy,
    ) -> Result<Vec<ScoredRow>, ServeError> {
        assert_eq!(data.len(), n * dims, "submit: data length mismatch");
        if n == 0 {
            return Ok(Vec::new());
        }
        // Optimistically claim queue room; undo on rejection. The bound is
        // approximate under races by at most one in-flight submission per
        // caller thread, which is exactly the slack a bounded queue needs.
        let claimed = self.shared.depth.fetch_add(n, Ordering::AcqRel) + n;
        if claimed > self.queue_depth {
            self.shared.depth.fetch_sub(n, Ordering::AcqRel);
            metrics::SERVE_REJECTED.inc();
            return Err(ServeError::Overloaded);
        }
        metrics::SERVE_QUEUE_DEPTH.set(claimed as u64);
        let (reply_tx, reply_rx) = channel();
        let job = Job {
            data,
            n,
            dims,
            strategy,
            enqueued: Instant::now(),
            reply: reply_tx,
        };
        let sent = match self.tx.lock().expect("batcher lock poisoned").as_ref() {
            Some(tx) => tx.send(job).is_ok(),
            None => false,
        };
        if !sent {
            self.shared.depth.fetch_sub(n, Ordering::AcqRel);
            return Err(ServeError::ShuttingDown);
        }
        metrics::SERVE_REQUESTS.inc();
        reply_rx
            .recv()
            .unwrap_or(Err(ServeError::Io("batcher worker died".into())))
    }

    /// Rows currently queued.
    pub fn depth(&self) -> usize {
        self.shared.depth.load(Ordering::Acquire)
    }

    /// Aggregate counters since start.
    pub fn stats(&self) -> BatcherStats {
        BatcherStats {
            batches: self.shared.batches.load(Ordering::Acquire),
            rows: self.shared.rows.load(Ordering::Acquire),
            max_fill: self.shared.max_fill.load(Ordering::Acquire),
        }
    }

    /// Stops accepting work, drains every queued job (no request is ever
    /// dropped), and joins the worker.
    pub fn shutdown(&self) {
        drop(self.tx.lock().expect("batcher lock poisoned").take());
        if let Some(worker) = self.worker.lock().expect("batcher lock poisoned").take() {
            let _ = worker.join();
        }
    }
}

impl Drop for MicroBatcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(
    rx: Receiver<Job>,
    shared: Arc<Shared>,
    registry: Arc<ModelRegistry>,
    runtime: Runtime,
    max_batch: usize,
    max_wait: std::time::Duration,
) {
    loop {
        // Block for the batch's first job; a disconnect here means every
        // sender is gone and the queue is fully drained.
        let first = match rx.recv() {
            Ok(job) => job,
            Err(_) => break,
        };
        let mut jobs = vec![first];
        let mut rows = jobs[0].n;
        // Whatever queued up while the previous batch executed coalesces
        // for free — drain it before consulting the clock, or a backlogged
        // first job (enqueued longer than max_wait ago) would execute
        // alone and the batcher would degrade to one row per batch exactly
        // when batching matters most. Jobs are never split, so a multi-row
        // job may overshoot max_batch; the policy bounds when we *stop
        // adding*, not the final fill.
        while rows < max_batch {
            match rx.try_recv() {
                Ok(job) => {
                    rows += job.n;
                    jobs.push(job);
                }
                Err(_) => break,
            }
        }
        // Under-filled: wait out the remainder of the first job's window
        // for stragglers.
        let deadline = jobs[0].enqueued + max_wait;
        while rows < max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(job) => {
                    rows += job.n;
                    jobs.push(job);
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        execute_batch(jobs, rows, &shared, &registry, &runtime);
    }
}

/// Scores one coalesced batch and distributes per-job replies.
fn execute_batch(
    jobs: Vec<Job>,
    rows: usize,
    shared: &Shared,
    registry: &ModelRegistry,
    runtime: &Runtime,
) {
    let started = Instant::now();
    let (snapshot, generation) = registry.current();
    let clf = &snapshot.classifier;
    let dims = clf.input_dim();

    // Resolve each job against *this* snapshot: a hot-swap between enqueue
    // and execution may have changed dimensionality or calibration, and
    // such jobs must fail individually without poisoning the batch.
    let mut accepted: Vec<(Job, f64)> = Vec::with_capacity(jobs.len());
    for job in jobs {
        metrics::SERVE_QUEUE_WAIT_NS.record(elapsed_ns(job.enqueued));
        if job.dims != dims {
            finish_job(
                shared,
                &job,
                Err(TargAdError::DimMismatch {
                    expected: dims,
                    got: job.dims,
                }
                .into()),
            );
            continue;
        }
        match snapshot.thresholds.get(job.strategy) {
            Some(tau) => accepted.push((job, tau)),
            None => {
                let strategy = job.strategy;
                finish_job(
                    shared,
                    &job,
                    Err(TargAdError::NotCalibrated { strategy }.into()),
                );
            }
        }
    }
    if accepted.is_empty() {
        return;
    }

    let batch_rows: usize = accepted.iter().map(|(job, _)| job.n).sum();
    let mut data = Vec::with_capacity(batch_rows * dims);
    let mut row_params = Vec::with_capacity(batch_rows);
    for (job, tau) in &accepted {
        data.extend_from_slice(&job.data);
        row_params.extend(std::iter::repeat_n((job.strategy, *tau), job.n));
    }
    let x = Matrix::from_vec(batch_rows, dims, data);
    // Precision is a property of the registry (weights were cast/packed at
    // insert or swap time under F32), so every batch against a snapshot
    // scores at the precision that snapshot was prepared for.
    let pairs = clf.verdicts_rt_with_prec(&x, runtime, registry.precision(), |r| row_params[r]);

    // Stats land before replies go out, so a caller that observes its
    // result (and anything joining on it) also observes the counters.
    shared.batches.fetch_add(1, Ordering::AcqRel);
    shared.rows.fetch_add(batch_rows as u64, Ordering::AcqRel);
    shared
        .max_fill
        .fetch_max(batch_rows as u64, Ordering::AcqRel);
    metrics::SERVE_BATCHES.inc();
    metrics::SERVE_ROWS.add(batch_rows as u64);
    metrics::SERVE_BATCH_FILL.record(rows as u64);

    let mut offset = 0;
    for (job, tau) in &accepted {
        let scored = pairs[offset..offset + job.n]
            .iter()
            .map(|&(score, class)| ScoredRow {
                score,
                class,
                strategy: job.strategy,
                threshold: *tau,
                generation,
            })
            .collect();
        offset += job.n;
        finish_job(shared, job, Ok(scored));
    }
    metrics::SERVE_BATCH_SERVICE_NS.record(elapsed_ns(started));
}

/// Sends a job's reply and releases its queue-depth claim.
fn finish_job(shared: &Shared, job: &Job, result: Result<Vec<ScoredRow>, ServeError>) {
    let depth = shared.depth.fetch_sub(job.n, Ordering::AcqRel) - job.n;
    metrics::SERVE_QUEUE_DEPTH.set(depth as u64);
    // A caller that gave up (dropped its receiver) is not an error.
    let _ = job.reply.send(result);
}

fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}
