//! Server configuration and error type.

use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

use targad_core::{EnginePrecision, OodStrategy, TargAdError};

/// Configuration of one [`crate::Server`] instance.
///
/// Built via [`ServeConfig::builder`], the idiomatic twin of
/// [`targad_core::TargAdConfig::builder`]: setters accept anything, and
/// [`ServeConfigBuilder::build`] validates every constraint into a typed
/// [`ServeError::InvalidConfig`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Interface to bind (default `127.0.0.1`).
    pub host: String,
    /// TCP port to bind; `0` asks the OS for an ephemeral port (the
    /// default — tests and benches read the bound port off the handle).
    pub port: u32,
    /// Maximum rows coalesced into one micro-batch (default 64).
    pub max_batch: usize,
    /// Longest a queued request waits for co-batchable traffic before its
    /// (possibly underfull) batch executes anyway (default 1 ms).
    pub max_queue_wait: Duration,
    /// Maximum rows queued ahead of the batcher before new requests are
    /// rejected with backpressure (default 1024).
    pub queue_depth: usize,
    /// OOD strategy used when a request does not select one
    /// (default [`OodStrategy::Msp`]).
    pub default_strategy: OodStrategy,
    /// Numeric precision of the scoring path (default
    /// [`EnginePrecision::F64`]). `F32` scores through the SIMD
    /// micro-kernels of `targad-linalg` — roughly twice the throughput —
    /// while training, calibration, and the `/admin/swap` load path stay
    /// in f64; the registry casts weights once per installed snapshot.
    pub precision: EnginePrecision,
    /// Shared secret for `/admin/*` routes, presented by clients in an
    /// `x-admin-token` header. When `None` (the default), admin routes only
    /// answer loopback peers; set a token to administer a server bound to a
    /// non-loopback interface.
    pub admin_token: Option<String>,
    /// Byte budget for resident models across all tenants, enforced by the
    /// registry's LRU: admitting a tenant model evicts least-recently-used
    /// tenants until resident bytes fit. `0` (the default) disables the
    /// budget. The pinned default model always counts against — and must
    /// fit — a non-zero budget.
    pub model_budget_bytes: u64,
    /// Directory of binary v3 snapshots (`<tenant>.tgsnp`, written by
    /// `targad-store`) from which unknown tenants named on `/score` are
    /// faulted in on first use. `None` (the default) disables fault-in:
    /// tenants then exist only via `/admin/load`.
    pub store_dir: Option<PathBuf>,
    /// Structured JSONL access log: one line per `/score` request (request
    /// id, tenant, rows, verdict counts, per-phase nanoseconds, status),
    /// appended to this path. `None` (the default) disables access
    /// logging.
    pub access_log: Option<PathBuf>,
    /// When `true`, `GET /metrics` and `GET /metrics.json` only answer
    /// loopback peers (the same fallback rule `/admin/*` uses without a
    /// token). Default `false`: the exposition endpoints are
    /// unauthenticated read-only and a scraper usually is not local.
    pub metrics_loopback_only: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            host: "127.0.0.1".into(),
            port: 0,
            max_batch: 64,
            max_queue_wait: Duration::from_millis(1),
            queue_depth: 1024,
            default_strategy: OodStrategy::Msp,
            precision: EnginePrecision::F64,
            admin_token: None,
            model_budget_bytes: 0,
            store_dir: None,
            access_log: None,
            metrics_loopback_only: false,
        }
    }
}

impl ServeConfig {
    /// A builder pre-filled with the defaults.
    ///
    /// ```
    /// use targad_serve::ServeConfig;
    /// let config = ServeConfig::builder().max_batch(32).build().unwrap();
    /// assert_eq!(config.max_batch, 32);
    /// assert!(ServeConfig::builder().max_batch(0).build().is_err());
    /// ```
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            config: Self::default(),
        }
    }

    /// Validates internal consistency, returning the first violated
    /// constraint as a typed [`ServeError::InvalidConfig`].
    pub fn try_validate(&self) -> Result<(), ServeError> {
        fn bad(field: &'static str, reason: String) -> Result<(), ServeError> {
            Err(ServeError::InvalidConfig { field, reason })
        }
        if self.host.is_empty() {
            return bad("host", "must not be empty".into());
        }
        if self.port > u32::from(u16::MAX) {
            return bad(
                "port",
                format!("must be at most {}, got {}", u16::MAX, self.port),
            );
        }
        if self.max_batch == 0 {
            return bad("max_batch", "must be positive".into());
        }
        if self.max_queue_wait.is_zero() || self.max_queue_wait > Duration::from_secs(5) {
            return bad(
                "max_queue_wait",
                format!("must be in (0, 5s], got {:?}", self.max_queue_wait),
            );
        }
        if self.queue_depth < self.max_batch {
            return bad(
                "queue_depth",
                format!(
                    "must be at least max_batch ({}), got {}",
                    self.max_batch, self.queue_depth
                ),
            );
        }
        if self.admin_token.as_deref() == Some("") {
            return bad("admin_token", "must not be empty when set".into());
        }
        if self.store_dir.as_deref() == Some(std::path::Path::new("")) {
            return bad("store_dir", "must not be empty when set".into());
        }
        if self.access_log.as_deref() == Some(std::path::Path::new("")) {
            return bad("access_log", "must not be empty when set".into());
        }
        Ok(())
    }
}

/// Validating builder for [`ServeConfig`], started via
/// [`ServeConfig::builder`].
#[derive(Clone, Debug)]
pub struct ServeConfigBuilder {
    config: ServeConfig,
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $field:ident: $ty:ty),+ $(,)?) => {$(
        $(#[$doc])*
        pub fn $field(mut self, value: $ty) -> Self {
            self.config.$field = value;
            self
        }
    )+};
}

impl ServeConfigBuilder {
    builder_setters! {
        /// Interface to bind.
        host: String,
        /// TCP port to bind (`0` = ephemeral).
        port: u32,
        /// Maximum rows coalesced into one micro-batch.
        max_batch: usize,
        /// Longest a queued request waits before its batch executes.
        max_queue_wait: Duration,
        /// Maximum queued rows before backpressure rejection.
        queue_depth: usize,
        /// OOD strategy when a request does not select one.
        default_strategy: OodStrategy,
        /// Numeric precision of the scoring path (f64 oracle or f32 SIMD).
        precision: EnginePrecision,
        /// Shared secret for `/admin/*` routes (`None` = loopback only).
        admin_token: Option<String>,
        /// Resident-model byte budget across tenants (`0` = unlimited).
        model_budget_bytes: u64,
        /// Directory of `<tenant>.tgsnp` v3 snapshots for tenant fault-in.
        store_dir: Option<PathBuf>,
        /// JSONL access-log path (`None` = no access log).
        access_log: Option<PathBuf>,
        /// Restrict the `/metrics` endpoints to loopback peers.
        metrics_loopback_only: bool,
    }

    /// Starts from an existing configuration instead of the defaults.
    pub fn from_config(config: ServeConfig) -> Self {
        Self { config }
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    /// [`ServeError::InvalidConfig`] naming the first field that violates
    /// its constraint.
    pub fn build(self) -> Result<ServeConfig, ServeError> {
        self.config.try_validate()?;
        Ok(self.config)
    }
}

/// Failures surfaced by the serve layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// A configuration field failed validation (see
    /// [`ServeConfig::try_validate`]).
    InvalidConfig {
        /// The offending field, e.g. `"max_batch"`.
        field: &'static str,
        /// Human-readable constraint violation.
        reason: String,
    },
    /// The bounded request queue is at capacity (backpressure): the caller
    /// should retry later. Maps to HTTP 503.
    Overloaded,
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
    /// A malformed request (bad JSON, wrong shapes, unknown strategy).
    /// Maps to HTTP 400.
    BadRequest(String),
    /// An admin route hit without valid credentials: the `x-admin-token`
    /// header did not match the configured token, or no token is
    /// configured and the peer is not loopback. Maps to HTTP 403.
    Unauthorized,
    /// A model-layer error (dimension mismatch, uncalibrated strategy, …).
    Model(TargAdError),
    /// The named tenant is neither resident nor present in the snapshot
    /// directory. Maps to HTTP 404.
    UnknownTenant(String),
    /// Admitting a model would exceed the resident-byte budget even after
    /// evicting every unpinned tenant. Maps to HTTP 507.
    BudgetExceeded {
        /// Bytes the rejected model needs resident.
        needed: u64,
        /// The configured budget.
        budget: u64,
    },
    /// An I/O failure, by message (kept `Eq`-comparable).
    Io(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidConfig { field, reason } => {
                write!(f, "invalid serve configuration: `{field}` {reason}")
            }
            ServeError::Overloaded => write!(f, "request queue full; retry later"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Unauthorized => {
                write!(f, "admin routes require a valid x-admin-token")
            }
            ServeError::Model(e) => write!(f, "model error: {e}"),
            ServeError::UnknownTenant(name) => {
                write!(f, "unknown tenant `{name}`")
            }
            ServeError::BudgetExceeded { needed, budget } => write!(
                f,
                "model needs {needed} resident bytes but the budget is {budget}"
            ),
            ServeError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<TargAdError> for ServeError {
    fn from(e: TargAdError) -> Self {
        ServeError::Model(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        ServeConfig::default().try_validate().unwrap();
        let c = ServeConfig::builder().build().unwrap();
        assert_eq!(c.max_batch, 64);
        assert_eq!(c.queue_depth, 1024);
        assert_eq!(c.default_strategy, OodStrategy::Msp);
        assert_eq!(c.precision, EnginePrecision::F64);
    }

    #[test]
    fn builder_sets_fields() {
        let c = ServeConfig::builder()
            .port(8080)
            .max_batch(16)
            .max_queue_wait(Duration::from_micros(500))
            .queue_depth(64)
            .default_strategy(OodStrategy::EnergyScore)
            .precision(EnginePrecision::F32)
            .build()
            .unwrap();
        assert_eq!(c.port, 8080);
        assert_eq!(c.max_batch, 16);
        assert_eq!(c.max_queue_wait, Duration::from_micros(500));
        assert_eq!(c.queue_depth, 64);
        assert_eq!(c.default_strategy, OodStrategy::EnergyScore);
        assert_eq!(c.precision, EnginePrecision::F32);
    }

    #[test]
    fn builder_surfaces_each_constraint_as_a_typed_error() {
        let field_of = |r: Result<ServeConfig, ServeError>| match r {
            Err(ServeError::InvalidConfig { field, .. }) => field,
            other => panic!("expected InvalidConfig, got {other:?}"),
        };
        assert_eq!(
            field_of(ServeConfig::builder().host(String::new()).build()),
            "host"
        );
        assert_eq!(
            field_of(ServeConfig::builder().port(70_000).build()),
            "port"
        );
        assert_eq!(
            field_of(ServeConfig::builder().max_batch(0).build()),
            "max_batch"
        );
        assert_eq!(
            field_of(
                ServeConfig::builder()
                    .max_queue_wait(Duration::ZERO)
                    .build()
            ),
            "max_queue_wait"
        );
        assert_eq!(
            field_of(
                ServeConfig::builder()
                    .max_queue_wait(Duration::from_secs(6))
                    .build()
            ),
            "max_queue_wait"
        );
        assert_eq!(
            field_of(ServeConfig::builder().queue_depth(1).build()),
            "queue_depth"
        );
        assert_eq!(
            field_of(
                ServeConfig::builder()
                    .admin_token(Some(String::new()))
                    .build()
            ),
            "admin_token"
        );
        assert_eq!(
            field_of(
                ServeConfig::builder()
                    .access_log(Some(PathBuf::new()))
                    .build()
            ),
            "access_log"
        );
    }

    #[test]
    fn errors_display_their_context() {
        let e = ServeError::InvalidConfig {
            field: "max_batch",
            reason: "must be positive".into(),
        };
        assert!(e.to_string().contains("max_batch"));
        assert!(ServeError::Overloaded.to_string().contains("queue"));
        assert!(ServeError::BadRequest("no rows".into())
            .to_string()
            .contains("no rows"));
        let m: ServeError = TargAdError::NotFitted.into();
        assert!(m.to_string().contains("fit"));
    }
}
