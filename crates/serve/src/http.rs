//! Minimal HTTP/1.1 framing — request parsing and response writing over
//! any `Read`/`Write` stream, with keep-alive. Vendored because the build
//! is offline: no async runtime, no HTTP dependency, just the subset of
//! RFC 9112 the serve protocol needs (`Content-Length` bodies; no chunked
//! encoding, no trailers).

use std::io::{self, BufRead, Write};

/// Largest accepted request body (64 MiB) — a guard against a malformed
/// `Content-Length` pinning the connection thread on a huge allocation.
pub const MAX_BODY_BYTES: usize = 64 << 20;

/// Largest accepted request/status/header line (8 KiB). `MAX_BODY_BYTES`
/// only guards `Content-Length` bodies; without this cap a peer streaming
/// an endless request line would grow the line buffer without bound.
pub const MAX_LINE_BYTES: usize = 8 << 10;

/// One parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Method verb, uppercased as received (`GET`, `POST`, …).
    pub method: String,
    /// Request target, e.g. `/score`.
    pub path: String,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lowercase).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// One parsed response (client side — tests and the bench driver).
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: Vec<u8>,
}

impl Response {
    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Reads one request off `reader`. Returns `Ok(None)` on clean EOF before
/// the first byte (the peer closed an idle keep-alive connection).
///
/// # Errors
/// `io::ErrorKind::InvalidData` on malformed framing; read errors pass
/// through (including timeouts, which the caller treats as idle polls).
pub fn read_request(reader: &mut impl BufRead) -> io::Result<Option<Request>> {
    let request_line = match read_line(reader)? {
        None => return Ok(None),
        Some(line) => line,
    };
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_string(), p.to_string(), v),
        _ => return Err(bad(format!("malformed request line `{request_line}`"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad(format!("unsupported version `{version}`")));
    }
    let headers = read_headers(reader)?;
    let body = read_body(reader, &headers)?;
    Ok(Some(Request {
        method,
        path,
        headers,
        body,
    }))
}

/// Reads one response off `reader` (client side).
///
/// # Errors
/// `io::ErrorKind::InvalidData` on malformed framing or premature EOF.
pub fn read_response(reader: &mut impl BufRead) -> io::Result<Response> {
    let status_line = read_line(reader)?.ok_or_else(|| bad("eof before status line".into()))?;
    let mut parts = status_line.split_whitespace();
    let status = match (parts.next(), parts.next()) {
        (Some(v), Some(code)) if v.starts_with("HTTP/1.") => code
            .parse::<u16>()
            .map_err(|_| bad(format!("bad status in `{status_line}`")))?,
        _ => return Err(bad(format!("malformed status line `{status_line}`"))),
    };
    let headers = read_headers(reader)?;
    let body = read_body(reader, &headers)?;
    Ok(Response {
        status,
        headers,
        body,
    })
}

/// Writes one response with a `Content-Length` body.
///
/// # Errors
/// Propagates stream write errors.
pub fn write_response(
    writer: &mut impl Write,
    status: u16,
    body: &[u8],
    content_type: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let reason = reason_of(status);
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        writer,
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {connection}\r\n\r\n",
        body.len()
    )?;
    writer.write_all(body)?;
    writer.flush()
}

/// Writes one request with an optional body and extra headers (client
/// side).
///
/// # Errors
/// Propagates stream write errors.
pub fn write_request(
    writer: &mut impl Write,
    method: &str,
    path: &str,
    host: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<()> {
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nhost: {host}\r\ncontent-type: application/json\r\ncontent-length: {}\r\n",
        body.len()
    )?;
    for (name, value) in extra_headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    writer.write_all(b"\r\n")?;
    writer.write_all(body)?;
    writer.flush()
}

fn reason_of(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Reads one CRLF-terminated line of at most [`MAX_LINE_BYTES`] bytes;
/// `None` on EOF before any byte.
fn read_line(reader: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut buf = Vec::new();
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            if buf.is_empty() {
                return Ok(None);
            }
            break; // EOF mid-line: hand back what arrived
        }
        let (consume, done) = match available.iter().position(|&b| b == b'\n') {
            Some(i) => (i + 1, true),
            None => (available.len(), false),
        };
        buf.extend_from_slice(&available[..consume]);
        reader.consume(consume);
        if buf.len() > MAX_LINE_BYTES {
            return Err(bad(format!("line exceeds {MAX_LINE_BYTES} bytes")));
        }
        if done {
            break;
        }
    }
    while buf.ends_with(b"\n") || buf.ends_with(b"\r") {
        buf.pop();
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| bad("line is not utf-8".into()))
}

fn read_headers(reader: &mut impl BufRead) -> io::Result<Vec<(String, String)>> {
    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?.ok_or_else(|| bad("eof inside headers".into()))?;
        if line.is_empty() {
            return Ok(headers);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad(format!("malformed header `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
}

fn read_body(reader: &mut impl BufRead, headers: &[(String, String)]) -> io::Result<Vec<u8>> {
    let length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| bad(format!("bad content-length `{v}`")))
        })
        .transpose()?
        .unwrap_or(0);
    if length > MAX_BODY_BYTES {
        return Err(bad(format!("content-length {length} exceeds limit")));
    }
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body)?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn request_round_trip() {
        let mut wire = Vec::new();
        write_request(
            &mut wire,
            "POST",
            "/score",
            "localhost",
            &[("x-admin-token", "s3cret")],
            b"{\"rows\":[]}",
        )
        .unwrap();
        let mut reader = BufReader::new(&wire[..]);
        let req = read_request(&mut reader).unwrap().expect("one request");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/score");
        assert_eq!(req.body, b"{\"rows\":[]}");
        assert_eq!(req.header("host"), Some("localhost"));
        assert_eq!(req.header("x-admin-token"), Some("s3cret"));
        assert!(!req.wants_close());
        // Clean EOF afterwards.
        assert!(read_request(&mut reader).unwrap().is_none());
    }

    #[test]
    fn response_round_trip() {
        let mut wire = Vec::new();
        write_response(
            &mut wire,
            503,
            b"{\"error\":\"x\"}",
            "application/json",
            true,
        )
        .unwrap();
        let resp = read_response(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.text(), "{\"error\":\"x\"}");
    }

    #[test]
    fn keep_alive_frames_consecutive_requests() {
        let mut wire = Vec::new();
        write_request(&mut wire, "GET", "/healthz", "h", &[], b"").unwrap();
        write_request(&mut wire, "GET", "/metrics", "h", &[], b"").unwrap();
        let mut reader = BufReader::new(&wire[..]);
        assert_eq!(read_request(&mut reader).unwrap().unwrap().path, "/healthz");
        assert_eq!(read_request(&mut reader).unwrap().unwrap().path, "/metrics");
        assert!(read_request(&mut reader).unwrap().is_none());
    }

    #[test]
    fn rejects_malformed_framing() {
        let cases: &[&[u8]] = &[
            b"NOT-HTTP\r\n\r\n",
            b"GET /x SPDY/3\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n",
            b"GET /x HTTP/1.1\r\ncontent-length: nope\r\n\r\n",
        ];
        for case in cases {
            let err = read_request(&mut BufReader::new(&case[..]));
            assert!(err.is_err(), "accepted {case:?}");
        }
    }

    #[test]
    fn body_guard_rejects_huge_lengths() {
        let wire = format!("POST /x HTTP/1.1\r\ncontent-length: {}\r\n\r\n", usize::MAX);
        assert!(read_request(&mut BufReader::new(wire.as_bytes())).is_err());
    }

    #[test]
    fn line_guard_rejects_endless_lines() {
        // An unterminated request line past the cap errors out instead of
        // accumulating without bound.
        let wire = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(2 * MAX_LINE_BYTES));
        assert!(read_request(&mut BufReader::new(wire.as_bytes())).is_err());
        // Same cap on header lines.
        let wire = format!(
            "GET /x HTTP/1.1\r\nx-big: {}\r\n\r\n",
            "b".repeat(2 * MAX_LINE_BYTES)
        );
        assert!(read_request(&mut BufReader::new(wire.as_bytes())).is_err());
        // A line just under the cap still parses.
        let wire = format!("GET /x HTTP/1.1\r\nx-ok: {}\r\n\r\n", "c".repeat(1024));
        assert!(read_request(&mut BufReader::new(wire.as_bytes())).is_ok());
    }
}
