//! A minimal JSON value type: enough of RFC 8259 for the serve protocol,
//! with no dependencies (the repo builds offline).
//!
//! Parsing is a plain recursive-descent pass; emission lives with the
//! response builders in [`crate::server`], which format straight into
//! strings ([`escape`] handles the one non-trivial part).

use std::fmt::Write as _;

/// Deepest accepted container nesting. The parser is recursive-descent, so
/// nesting depth is stack depth; without a cap, a body of ~100 KB of `[`
/// characters (well under [`crate::http::MAX_BODY_BYTES`]) would overflow
/// the connection thread's stack and abort the whole process.
pub const MAX_DEPTH: usize = 128;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses `text` as a single JSON value (trailing whitespace allowed).
    ///
    /// # Errors
    /// A human-readable message naming the offending byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    /// Member `key` of an object (`None` for other variants or a missing
    /// key).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') if depth >= MAX_DEPTH => Err(format!(
            "nesting deeper than {MAX_DEPTH} at byte {pos}",
            pos = *pos
        )),
        Some(b'{') if depth >= MAX_DEPTH => Err(format!(
            "nesting deeper than {MAX_DEPTH} at byte {pos}",
            pos = *pos
        )),
        Some(b'[') => parse_array(bytes, pos, depth + 1),
        Some(b'{') => parse_object(bytes, pos, depth + 1),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("expected `{literal}` at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number bytes");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not needed by this protocol;
                        // lone surrogates map to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences included).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid utf-8 at byte {pos}", pos = *pos))?;
                let c = rest.chars().next().expect("nonempty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        members.push((key, parse_value(bytes, pos, depth)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_score_request_shape() {
        let v = Json::parse(r#"{"rows": [[1.0, -2.5e-1], [0, 3]], "ood_strategy": "msp"}"#)
            .expect("parse");
        assert_eq!(v.get("ood_strategy").and_then(Json::as_str), Some("msp"));
        let rows = v.get("rows").and_then(Json::as_arr).expect("rows");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].as_arr().unwrap()[1].as_f64(), Some(-0.25));
    }

    #[test]
    fn parses_scalars_and_nesting() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-12.5").unwrap(), Json::Num(-12.5));
        assert_eq!(
            Json::parse(r#""a\"b\nA""#).unwrap(),
            Json::Str("a\"b\nA".into())
        );
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(vec![]));
        let v = Json::parse(r#"{"a": {"b": [1, {"c": false}]}}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().get("b").unwrap().as_arr().unwrap()[1].get("c"),
            Some(&Json::Bool(false))
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a"}"#,
            r#"{"a":}"#,
            "tru",
            "1 2",
            "[1]]",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn nesting_depth_is_bounded() {
        // At the limit: fine.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&ok).is_ok());
        // One past the limit: a parse error, not a stack overflow.
        let deep = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(Json::parse(&deep).unwrap_err().contains("nesting"));
        // The attack shape from the wild: ~100 KB of '[' with no closers
        // must error out instead of overflowing the thread stack.
        let bomb = "[".repeat(100_000);
        assert!(Json::parse(&bomb).is_err());
        // Objects count against the same budget.
        let objs = format!(
            "{}1{}",
            "{\"k\":".repeat(MAX_DEPTH + 1),
            "}".repeat(MAX_DEPTH + 1)
        );
        assert!(Json::parse(&objs).unwrap_err().contains("nesting"));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(Json::parse(&doc).unwrap(), Json::Str(nasty.into()));
    }

    #[test]
    fn parses_utf8_strings() {
        assert_eq!(
            Json::parse("\"héllo – wörld\"").unwrap(),
            Json::Str("héllo – wörld".into())
        );
    }
}
