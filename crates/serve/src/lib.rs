//! **targad-serve** — the online scoring service.
//!
//! Turns the batch-oriented TargAD harness into the long-running system the
//! paper's SQB deployment sketch implies: a daemon that scores instances as
//! they arrive and answers with the *decision* (§III-C three-way verdict),
//! not just the Eq. 9 scalar. Three pieces:
//!
//! - [`ModelRegistry`] ([`registry`]): a multi-tenant store of fitted
//!   models behind generation-counted `Arc` handles, fronted by a
//!   byte-budgeted LRU — a pinned default tenant keeps the original
//!   atomic hot-swap contract (in-flight batches finish on the snapshot
//!   they started with), while named tenants are admitted under a
//!   resident-byte budget and faulted in from a directory of binary v3
//!   snapshots (`targad-store`) on first use.
//! - [`MicroBatcher`] ([`batcher`]): a bounded queue plus a worker that
//!   coalesces concurrent score requests into fused
//!   `ScoreEngine` passes under a max-wait/max-batch policy, amortizing
//!   the batched-inference advantage across independent callers. Tenants
//!   resolve to their model at submit time, so an LRU eviction never
//!   tears an in-flight batch. Queue depth,
//!   batch fill, and wait times feed the `targad-obs` registry.
//! - [`Server`] ([`server`]): a dependency-free HTTP/1.1 front end (the
//!   repo builds offline — no async runtime) exposing `/score`,
//!   `/admin/swap`, `/admin/load`, `/admin/evict`, `/admin/tenants`,
//!   `/model`, `/healthz`, `/metrics` (Prometheus text, with per-tenant
//!   series), and `/metrics.json`.
//!
//! The serve path is fully observable: every request gets a process-unique
//! id and a [`targad_obs::RequestTrace`] whose `queue_wait → coalesce →
//! engine → serialize` phase timings ride the job through the batcher;
//! per-tenant counters, latency/batch-size histograms, and score-
//! distribution sketches ([`targad_obs::sketch`]) are recorded ungated as
//! serving truth; and an opt-in JSONL access log
//! ([`ServeConfig::access_log`]) captures one structured line per request.
//! [`profile`] distills the telemetry into a replayable workload profile.
//!
//! Every `/score` response row carries a full [`targad_core::Verdict`]:
//! score, three-way class, the per-request-selected
//! [`targad_core::OodStrategy`], and the calibrated threshold the decision
//! used — thresholds are cached on the model snapshot at swap time
//! ([`ModelSnapshot`]), so the request path does zero calibration work.

pub mod batcher;
pub mod config;
pub mod http;
pub mod json;
pub mod profile;
pub mod registry;
pub mod server;

pub use batcher::{BatcherStats, MicroBatcher, ScoredRow, SubmitOutcome};
pub use config::{ServeConfig, ServeConfigBuilder, ServeError};
pub use json::Json;
pub use profile::WorkloadProfile;
pub use registry::{valid_tenant_name, ModelRegistry, ModelSnapshot, TenantInfo, DEFAULT_TENANT};
pub use server::{Client, Server, ServerHandle};
pub use targad_core::EnginePrecision;
