//! Workload-profile recorder: distill serve telemetry into a replayable
//! traffic description.
//!
//! A [`WorkloadProfile`] is everything a load generator needs to
//! approximate the traffic a server actually saw — captured from the
//! ungated `serve.*` metrics and per-tenant families in `targad-obs`, not
//! from any extra bookkeeping on the request path:
//!
//! - the **rows-per-request** distribution (`serve.request_rows`),
//! - the **inter-arrival gap** distribution (`serve.arrival_gap_ns`),
//! - the realized **batch-fill** distribution (`serve.batch_fill`,
//!   recorded for fidelity checks — a replay reproduces offered load, and
//!   the batcher re-derives fills),
//! - the **tenant mix** (per-tenant request counts), and
//! - the **row dimensionality** the model was scoring.
//!
//! Profiles serialize to a small JSON document checked in under
//! `results/profiles/`; `bench_serve` captures one from its live phase and
//! replays it (ROADMAP item 2: profile-driven workload generation).
//! Sampling uses inverse-CDF over the power-of-4 histogram buckets with
//! each bucket's low edge as the representative value, so a replay never
//! offers *more* rows than the live run did at the same request count.

use std::path::Path;

use targad_obs::metrics::{self, HISTOGRAM_BUCKETS};
use targad_obs::{labeled, LabelId};

use crate::config::ServeError;
use crate::json::Json;

/// One captured power-of-4 histogram: bucket `i` counted values in
/// `[4^i, 4^(i+1))` (bucket 0 additionally holds zero; the last bucket is
/// open-ended).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistProfile {
    /// Per-bucket observation counts.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Largest observed value.
    pub max: u64,
}

impl HistProfile {
    fn capture(h: &metrics::Histogram) -> Self {
        Self {
            buckets: h.buckets(),
            count: h.count(),
            max: h.max(),
        }
    }

    /// Low edge of bucket `i`, clamped to at least 1 (the sampling
    /// representative).
    fn bucket_low(i: usize) -> u64 {
        if i == 0 {
            1
        } else {
            1u64 << (2 * i)
        }
    }

    /// Inverse-CDF sample for a uniform `u` in `[0, 1)`: walks the bucket
    /// counts and returns the selected bucket's representative value.
    /// Returns `fallback` when the histogram is empty.
    pub fn sample(&self, u: f64, fallback: u64) -> u64 {
        if self.count == 0 {
            return fallback;
        }
        let target = (u.clamp(0.0, 1.0) * self.count as f64) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if target < seen {
                return Self::bucket_low(i).min(self.max.max(1));
            }
        }
        Self::bucket_low(HISTOGRAM_BUCKETS - 1).min(self.max.max(1))
    }

    fn to_json(&self) -> String {
        let buckets: Vec<String> = self.buckets.iter().map(u64::to_string).collect();
        format!(
            "{{\"buckets\": [{}], \"count\": {}, \"max\": {}}}",
            buckets.join(", "),
            self.count,
            self.max
        )
    }

    fn parse(doc: &Json, what: &str) -> Result<Self, ServeError> {
        let bad = |msg: String| ServeError::BadRequest(msg);
        let arr = doc
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad(format!("profile: {what}.buckets missing")))?;
        if arr.len() != HISTOGRAM_BUCKETS {
            return Err(bad(format!(
                "profile: {what}.buckets has {} entries, expected {HISTOGRAM_BUCKETS}",
                arr.len()
            )));
        }
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (i, v) in arr.iter().enumerate() {
            buckets[i] = v
                .as_f64()
                .ok_or_else(|| bad(format!("profile: {what}.buckets[{i}] not a number")))?
                as u64;
        }
        let field = |name: &str| {
            doc.get(name)
                .and_then(Json::as_f64)
                .map(|v| v as u64)
                .ok_or_else(|| bad(format!("profile: {what}.{name} missing")))
        };
        Ok(Self {
            buckets,
            count: field("count")?,
            max: field("max")?,
        })
    }
}

/// A tenant's share of the captured traffic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantShare {
    /// Tenant name (`_other` aggregates past-cap tenants).
    pub tenant: String,
    /// Requests this tenant submitted during the capture window.
    pub requests: u64,
}

/// A captured serve workload: enough to regenerate statistically similar
/// traffic (see module docs).
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadProfile {
    /// Profile name (`serve_default` for the bench's standard capture).
    pub name: String,
    /// Columns per row the captured traffic carried.
    pub dims: usize,
    /// Total requests in the capture window.
    pub requests: u64,
    /// Total rows in the capture window.
    pub rows: u64,
    /// Per-tenant request counts, descending.
    pub tenants: Vec<TenantShare>,
    /// Rows-per-request distribution.
    pub request_rows: HistProfile,
    /// Inter-arrival gap distribution (nanoseconds).
    pub arrival_gap_ns: HistProfile,
    /// Realized batch-fill distribution (for fidelity comparison).
    pub batch_fill: HistProfile,
}

impl WorkloadProfile {
    /// Captures the current process-wide serve telemetry as a profile.
    /// Call it at the end of a serving window; pair with
    /// [`targad_obs::metrics::reset_all`] beforehand to scope the window.
    pub fn capture(name: impl Into<String>, dims: usize) -> Self {
        let mut tenants: Vec<TenantShare> = labeled::tenants()
            .iter()
            .map(|(id, tenant)| TenantShare {
                tenant: tenant.to_string(),
                requests: labeled::TENANT_REQUESTS.get(id),
            })
            .filter(|t| t.requests > 0)
            .collect();
        let overflow = labeled::TENANT_REQUESTS.get(LabelId::OVERFLOW);
        if overflow > 0 {
            tenants.push(TenantShare {
                tenant: "_other".into(),
                requests: overflow,
            });
        }
        tenants.sort_by(|a, b| b.requests.cmp(&a.requests).then(a.tenant.cmp(&b.tenant)));
        Self {
            name: name.into(),
            dims,
            requests: metrics::SERVE_REQUESTS.get(),
            rows: metrics::SERVE_ROWS.get(),
            tenants,
            request_rows: HistProfile::capture(&metrics::SERVE_REQUEST_ROWS),
            arrival_gap_ns: HistProfile::capture(&metrics::SERVE_ARRIVAL_GAP_NS),
            batch_fill: HistProfile::capture(&metrics::SERVE_BATCH_FILL),
        }
    }

    /// Mean rows per request over the capture window (1.0 when empty).
    pub fn mean_rows_per_request(&self) -> f64 {
        if self.requests == 0 {
            1.0
        } else {
            self.rows as f64 / self.requests as f64
        }
    }

    /// Samples a rows-per-request value for a uniform `u` in `[0, 1)`.
    pub fn sample_request_rows(&self, u: f64) -> u64 {
        self.request_rows.sample(u, 1).max(1)
    }

    /// Samples a tenant name for a uniform `u` in `[0, 1)` proportionally
    /// to the captured mix (`None` = no named tenants captured: use the
    /// default).
    pub fn sample_tenant(&self, u: f64) -> Option<&str> {
        let total: u64 = self.tenants.iter().map(|t| t.requests).sum();
        if total == 0 {
            return None;
        }
        let target = (u.clamp(0.0, 1.0) * total as f64) as u64;
        let mut seen = 0u64;
        for t in &self.tenants {
            seen += t.requests;
            if target < seen {
                return Some(&t.tenant);
            }
        }
        self.tenants.last().map(|t| t.tenant.as_str())
    }

    /// Serializes the profile as pretty-stable JSON (the checked-in
    /// `results/profiles/*.json` format).
    pub fn to_json(&self) -> String {
        let tenants: Vec<String> = self
            .tenants
            .iter()
            .map(|t| {
                format!(
                    "{{\"tenant\": \"{}\", \"requests\": {}}}",
                    crate::json::escape(&t.tenant),
                    t.requests
                )
            })
            .collect();
        format!(
            "{{\n  \"name\": \"{}\",\n  \"dims\": {},\n  \"requests\": {},\n  \"rows\": {},\n  \
             \"mean_rows_per_request\": {:.3},\n  \"tenants\": [{}],\n  \
             \"request_rows\": {},\n  \"arrival_gap_ns\": {},\n  \"batch_fill\": {}\n}}\n",
            crate::json::escape(&self.name),
            self.dims,
            self.requests,
            self.rows,
            self.mean_rows_per_request(),
            tenants.join(", "),
            self.request_rows.to_json(),
            self.arrival_gap_ns.to_json(),
            self.batch_fill.to_json()
        )
    }

    /// Parses a profile from its JSON serialization.
    ///
    /// # Errors
    /// [`ServeError::BadRequest`] describing the first malformed field.
    pub fn parse(text: &str) -> Result<Self, ServeError> {
        let doc = Json::parse(text).map_err(ServeError::BadRequest)?;
        let bad = |msg: &str| ServeError::BadRequest(format!("profile: {msg}"));
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("name missing"))?
            .to_string();
        let num = |field: &'static str| {
            doc.get(field)
                .and_then(Json::as_f64)
                .ok_or_else(|| ServeError::BadRequest(format!("profile: {field} missing")))
        };
        let tenants = doc
            .get("tenants")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("tenants missing"))?
            .iter()
            .map(|t| {
                let tenant = t
                    .get("tenant")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("tenant name missing"))?
                    .to_string();
                let requests =
                    t.get("requests")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| bad("tenant requests missing"))? as u64;
                Ok(TenantShare { tenant, requests })
            })
            .collect::<Result<Vec<_>, ServeError>>()?;
        Ok(Self {
            name,
            dims: num("dims")? as usize,
            requests: num("requests")? as u64,
            rows: num("rows")? as u64,
            tenants,
            request_rows: HistProfile::parse(
                doc.get("request_rows")
                    .ok_or_else(|| bad("request_rows missing"))?,
                "request_rows",
            )?,
            arrival_gap_ns: HistProfile::parse(
                doc.get("arrival_gap_ns")
                    .ok_or_else(|| bad("arrival_gap_ns missing"))?,
                "arrival_gap_ns",
            )?,
            batch_fill: HistProfile::parse(
                doc.get("batch_fill")
                    .ok_or_else(|| bad("batch_fill missing"))?,
                "batch_fill",
            )?,
        })
    }

    /// Writes the profile to `path` (creating parent directories).
    ///
    /// # Errors
    /// [`ServeError::Io`] on filesystem failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ServeError> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())?;
        Ok(())
    }

    /// Loads a profile from `path`.
    ///
    /// # Errors
    /// [`ServeError::Io`] on read failures, [`ServeError::BadRequest`] on
    /// malformed content.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ServeError> {
        Self::parse(&std::fs::read_to_string(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic() -> WorkloadProfile {
        let mut request_rows = HistProfile::default();
        request_rows.buckets[0] = 90; // 1-3 rows
        request_rows.buckets[1] = 10; // 4-15 rows
        request_rows.count = 100;
        request_rows.max = 8;
        let mut arrival_gap_ns = HistProfile::default();
        arrival_gap_ns.buckets[9] = 100; // ~262us-1ms gaps
        arrival_gap_ns.count = 100;
        arrival_gap_ns.max = 900_000;
        WorkloadProfile {
            name: "test".into(),
            dims: 16,
            requests: 100,
            rows: 170,
            tenants: vec![
                TenantShare {
                    tenant: "default".into(),
                    requests: 75,
                },
                TenantShare {
                    tenant: "acme".into(),
                    requests: 25,
                },
            ],
            request_rows,
            arrival_gap_ns,
            batch_fill: HistProfile::default(),
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let p = synthetic();
        let parsed = WorkloadProfile::parse(&p.to_json()).expect("parse");
        assert_eq!(parsed, p);
    }

    #[test]
    fn sampling_follows_the_captured_distribution() {
        let p = synthetic();
        // 90% of the mass is in bucket 0 (representative 1), 10% in
        // bucket 1 (representative 4, clamped to max 8 -> 4).
        let n = 10_000;
        let small = (0..n)
            .map(|i| p.sample_request_rows(i as f64 / n as f64))
            .filter(|&r| r == 1)
            .count();
        assert!(
            (small as f64 / n as f64 - 0.9).abs() < 0.02,
            "bucket-0 share {small}/{n}"
        );
        // Tenant mix: 75/25.
        let default_share = (0..n)
            .map(|i| p.sample_tenant(i as f64 / n as f64))
            .filter(|t| *t == Some("default"))
            .count();
        assert!(
            (default_share as f64 / n as f64 - 0.75).abs() < 0.02,
            "default share {default_share}/{n}"
        );
        // Empty histogram falls back.
        assert_eq!(p.batch_fill.sample(0.5, 7), 7);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(WorkloadProfile::parse("{}").is_err());
        assert!(WorkloadProfile::parse("not json").is_err());
        let truncated = synthetic().to_json().replace("\"rows\": 170,", "");
        assert!(WorkloadProfile::parse(&truncated).is_err());
    }

    #[test]
    fn save_load_round_trips_via_disk() {
        let p = synthetic();
        let dir = std::env::temp_dir().join(format!("targad-profile-{}", std::process::id()));
        let path = dir.join("nested/test.json");
        p.save(&path).expect("save");
        let loaded = WorkloadProfile::load(&path).expect("load");
        assert_eq!(loaded, p);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
