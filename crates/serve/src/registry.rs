//! The model registry: a multi-tenant store of fitted models behind
//! generation-counted `Arc` handles, fronted by a byte-budgeted LRU.
//!
//! One *pinned* default tenant preserves the single-model contract the
//! serve layer started with: [`ModelRegistry::current`] /
//! [`ModelRegistry::swap`] read and hot-swap it exactly as before. Named
//! tenants are admitted through [`ModelRegistry::load_tenant`] (or faulted
//! in from a `store_dir` of binary v3 snapshots on first use) and compete
//! for a byte budget: when admitting a model would push resident bytes
//! past [`ModelRegistry::budget_bytes`], least-recently-used tenants are
//! evicted until it fits. The invariant is **hard** — resident bytes never
//! exceed the budget, checked before every insert — and it is safe because
//! scoring paths resolve `(Arc<ModelSnapshot>, generation)` *at submit
//! time*: an in-flight batch owns its snapshot `Arc`, so eviction merely
//! drops the registry's reference and the batch finishes untorn on the
//! model it started with.
//!
//! Resident cost per tenant is the model's logical f64 weight bytes
//! (charged whether the weights live on the heap or borrow an `mmap`ed
//! v3 snapshot — either way the bytes are pinned while the tenant is
//! resident) plus its packed f32 plan when the registry scores in
//! [`EnginePrecision::F32`]. Plans are warmed at admit time, never on a
//! request. The `store.*` metrics in `targad-obs` expose hits, misses,
//! evictions, admit latency, and the resident-bytes gauge.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

use targad_core::{Classifier, EnginePrecision, ThresholdCache};
use targad_obs::{labeled, metrics};

use crate::config::ServeError;

/// The reserved name of the pinned default tenant.
pub const DEFAULT_TENANT: &str = "default";

/// Tenant names accepted on the wire and as `store_dir` file stems:
/// 1–64 chars of `[A-Za-z0-9_-]`, so a tenant can never traverse paths
/// or smuggle separators into responses.
pub fn valid_tenant_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

/// One immutable, decision-ready model: the trained classifier plus the
/// §III-C thresholds calibrated for it. Snapshots carry everything a
/// request needs, so the score path does zero calibration work.
#[derive(Clone)]
pub struct ModelSnapshot {
    /// The trained `m + k`-way classifier.
    pub classifier: Classifier,
    /// Calibrated per-strategy thresholds (see
    /// [`targad_core::TargAd::calibrate_thresholds`]).
    pub thresholds: ThresholdCache,
    /// Operator-chosen label for this model version (surfaced by
    /// `/model`).
    pub tag: String,
}

impl ModelSnapshot {
    /// Bundles a classifier with its calibrated thresholds under `tag`.
    pub fn new(classifier: Classifier, thresholds: ThresholdCache, tag: impl Into<String>) -> Self {
        Self {
            classifier,
            thresholds,
            tag: tag.into(),
        }
    }

    /// The bytes this snapshot pins while resident: logical f64 weight
    /// bytes (owned heap or borrowed mapping alike) plus the packed f32
    /// plan if one has been warmed.
    pub fn resident_cost(&self) -> u64 {
        let dims = self.classifier.layer_dims();
        let weights: usize = dims
            .windows(2)
            .map(|pair| (pair[0] + 1) * pair[1] * std::mem::size_of::<f64>())
            .sum();
        (weights + self.classifier.f32_plan_bytes()) as u64
    }
}

/// A resident tenant's public card (the `/admin/tenants` row).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantInfo {
    /// Tenant name (`default` for the pinned tenant).
    pub tenant: String,
    /// The resident model's operator tag.
    pub tag: String,
    /// Global install generation of the resident model.
    pub generation: u64,
    /// Bytes this tenant charges against the budget.
    pub bytes: u64,
}

struct TenantEntry {
    snapshot: Arc<ModelSnapshot>,
    generation: u64,
    bytes: u64,
    /// LRU clock value of the last resolve; updated under the *read*
    /// lock, so the hot path never serializes on the registry.
    last_used: AtomicU64,
}

struct Tenants {
    map: HashMap<String, TenantEntry>,
    resident_bytes: u64,
}

impl Tenants {
    fn set_gauge(&self) {
        metrics::STORE_RESIDENT_BYTES.set_always(self.resident_bytes);
    }
}

/// Publishes `bytes` on the per-tenant resident-bytes gauge, interning the
/// tenant label (admitted tenants are validated and budget-bounded, so
/// they are exactly the "active tenants" `/metrics` should enumerate).
fn set_tenant_bytes(name: &str, bytes: u64) {
    labeled::TENANT_RESIDENT_BYTES.set(labeled::tenants().intern(name), bytes);
}

/// Zeroes a tenant's resident-bytes gauge without interning: a tenant that
/// never scored or loaded should not claim a label slot on eviction.
fn clear_tenant_bytes(name: &str) {
    if let Some(id) = labeled::tenants().lookup(name) {
        labeled::TENANT_RESIDENT_BYTES.set(id, 0);
    }
}

/// Generation-counted multi-tenant model store with atomic hot-swap of the
/// pinned default tenant and byte-budgeted LRU admission for the rest.
pub struct ModelRegistry {
    tenants: RwLock<Tenants>,
    /// Global install counter: every admitted or swapped model gets the
    /// next generation, so generations are unique and monotone across
    /// tenants.
    installs: AtomicU64,
    /// LRU clock, bumped on every tenant resolve.
    clock: AtomicU64,
    precision: EnginePrecision,
    budget_bytes: u64,
    store_dir: Option<PathBuf>,
}

impl ModelRegistry {
    /// A registry serving `snapshot` as generation 1, scoring in f64, with
    /// no byte budget and no snapshot directory.
    pub fn new(snapshot: ModelSnapshot) -> Self {
        Self::with_precision(snapshot, EnginePrecision::F64)
    }

    /// A registry serving `snapshot` as generation 1 at `precision`.
    ///
    /// Under [`EnginePrecision::F32`] the snapshot's weights are cast and
    /// panel-packed for the SIMD kernels *here* — once per installed model,
    /// at insert and at every [`ModelRegistry::swap`] — so no request ever
    /// pays the cast.
    pub fn with_precision(snapshot: ModelSnapshot, precision: EnginePrecision) -> Self {
        Self::with_options(snapshot, precision, 0, None)
            .expect("an unbudgeted registry always admits its default model")
    }

    /// The fully general constructor: `budget_bytes = 0` means unlimited;
    /// `store_dir`, when set, is scanned for `<tenant>.tgsnp` binary v3
    /// snapshots to fault tenants in on first use.
    ///
    /// # Errors
    /// [`ServeError::BudgetExceeded`] when the pinned default model alone
    /// does not fit the budget — such a server could never score anything.
    pub fn with_options(
        snapshot: ModelSnapshot,
        precision: EnginePrecision,
        budget_bytes: u64,
        store_dir: Option<PathBuf>,
    ) -> Result<Self, ServeError> {
        if precision == EnginePrecision::F32 {
            snapshot.classifier.warm_f32();
        }
        let bytes = snapshot.resident_cost();
        if budget_bytes != 0 && bytes > budget_bytes {
            return Err(ServeError::BudgetExceeded {
                needed: bytes,
                budget: budget_bytes,
            });
        }
        let mut map = HashMap::new();
        map.insert(
            DEFAULT_TENANT.to_string(),
            TenantEntry {
                snapshot: Arc::new(snapshot),
                generation: 1,
                bytes,
                last_used: AtomicU64::new(0),
            },
        );
        let tenants = Tenants {
            map,
            resident_bytes: bytes,
        };
        tenants.set_gauge();
        set_tenant_bytes(DEFAULT_TENANT, bytes);
        metrics::SERVE_GENERATION.set_always(1);
        Ok(Self {
            tenants: RwLock::new(tenants),
            installs: AtomicU64::new(1),
            clock: AtomicU64::new(0),
            precision,
            budget_bytes,
            store_dir,
        })
    }

    /// The precision every batch scored off this registry uses.
    pub fn precision(&self) -> EnginePrecision {
        self.precision
    }

    /// The byte budget (`0` = unlimited).
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Bytes currently charged by resident tenants (including the pinned
    /// default). Never exceeds a non-zero [`ModelRegistry::budget_bytes`].
    pub fn resident_bytes(&self) -> u64 {
        self.tenants
            .read()
            .expect("registry lock poisoned")
            .resident_bytes
    }

    /// The default tenant's snapshot and generation, read consistently:
    /// the pair is taken under one read lock, so a concurrent swap can
    /// never pair snapshot N with generation N+1.
    pub fn current(&self) -> (Arc<ModelSnapshot>, u64) {
        self.resolve(None)
            .expect("the default tenant is pinned and always resident")
    }

    /// The default tenant's generation (1-based, monotone under swaps).
    pub fn generation(&self) -> u64 {
        self.current().1
    }

    /// Resolves `tenant` (default when `None`) to its resident snapshot
    /// and generation, faulting it in from the snapshot directory on a
    /// miss. The returned `Arc` keeps the model alive across any later
    /// eviction — callers score untorn no matter what the LRU does.
    ///
    /// # Errors
    /// [`ServeError::BadRequest`] for an invalid tenant name,
    /// [`ServeError::UnknownTenant`] when the tenant is neither resident
    /// nor present in the snapshot directory, and
    /// [`ServeError::BudgetExceeded`] when faulting it in cannot fit the
    /// budget even after evicting every unpinned tenant.
    pub fn resolve(&self, tenant: Option<&str>) -> Result<(Arc<ModelSnapshot>, u64), ServeError> {
        let name = tenant.unwrap_or(DEFAULT_TENANT);
        if !valid_tenant_name(name) {
            return Err(ServeError::BadRequest(format!(
                "invalid tenant name `{}`",
                name.escape_default()
            )));
        }
        {
            let tenants = self.tenants.read().expect("registry lock poisoned");
            if let Some(entry) = tenants.map.get(name) {
                entry.last_used.store(self.tick(), Ordering::Release);
                if name != DEFAULT_TENANT {
                    metrics::STORE_CACHE_HITS.inc_always();
                }
                return Ok((Arc::clone(&entry.snapshot), entry.generation));
            }
        }
        metrics::STORE_CACHE_MISSES.inc_always();
        self.fault_in(name)
    }

    /// Loads `<store_dir>/<name>.tgsnp` and admits it. Runs the disk load
    /// outside any lock; a concurrent fault-in of the same tenant is
    /// resolved by whoever inserts first (the loser adopts the winner's
    /// entry).
    fn fault_in(&self, name: &str) -> Result<(Arc<ModelSnapshot>, u64), ServeError> {
        let Some(dir) = &self.store_dir else {
            return Err(ServeError::UnknownTenant(name.to_string()));
        };
        let path = dir.join(format!("{name}.tgsnp"));
        if !path.is_file() {
            return Err(ServeError::UnknownTenant(name.to_string()));
        }
        let model = targad_store::load(&path)
            .map_err(|e| ServeError::Io(format!("tenant `{name}` snapshot: {e}")))?;
        let snapshot = ModelSnapshot::new(model.classifier, model.thresholds, name);
        let generation = self.admit(name, snapshot)?;
        let tenants = self.tenants.read().expect("registry lock poisoned");
        let entry = tenants.map.get(name).expect("just admitted");
        // A racing admit may have installed a newer generation; serve
        // whatever is resident now.
        let _ = generation;
        Ok((Arc::clone(&entry.snapshot), entry.generation))
    }

    /// Admits `snapshot` as tenant `name`, evicting least-recently-used
    /// tenants as needed, and returns the installed generation. Replacing
    /// a resident tenant frees its bytes first. The f32 plan is warmed
    /// before any lock is taken.
    ///
    /// # Errors
    /// [`ServeError::BadRequest`] for an invalid name and
    /// [`ServeError::BudgetExceeded`] when the model cannot fit even with
    /// every unpinned tenant evicted.
    pub fn load_tenant(&self, name: &str, snapshot: ModelSnapshot) -> Result<u64, ServeError> {
        if !valid_tenant_name(name) {
            return Err(ServeError::BadRequest(format!(
                "invalid tenant name `{}`",
                name.escape_default()
            )));
        }
        if name == DEFAULT_TENANT {
            // Loading "default" is a hot-swap of the pinned tenant.
            return self.try_swap(snapshot);
        }
        self.admit(name, snapshot)
    }

    fn admit(&self, name: &str, snapshot: ModelSnapshot) -> Result<u64, ServeError> {
        let started = Instant::now();
        if self.precision == EnginePrecision::F32 {
            snapshot.classifier.warm_f32();
        }
        let bytes = snapshot.resident_cost();
        let mut tenants = self.tenants.write().expect("registry lock poisoned");
        let freed = tenants.map.get(name).map_or(0, |e| e.bytes);
        self.make_room(&mut tenants, bytes, freed, name)?;
        let generation = self.installs.fetch_add(1, Ordering::AcqRel) + 1;
        if let Some(old) = tenants.map.insert(
            name.to_string(),
            TenantEntry {
                snapshot: Arc::new(snapshot),
                generation,
                bytes,
                last_used: AtomicU64::new(self.tick()),
            },
        ) {
            tenants.resident_bytes -= old.bytes;
        }
        tenants.resident_bytes += bytes;
        tenants.set_gauge();
        set_tenant_bytes(name, bytes);
        metrics::STORE_ADMIT_NS.record_always(elapsed_ns(started));
        Ok(generation)
    }

    /// Evicts unpinned tenants in LRU order until `bytes` fits beside
    /// everything remaining (with `freed` bytes of the entry being
    /// replaced, `keep`, already discounted). Does not modify the map at
    /// all on failure.
    fn make_room(
        &self,
        tenants: &mut Tenants,
        bytes: u64,
        freed: u64,
        keep: &str,
    ) -> Result<(), ServeError> {
        if self.budget_bytes == 0 {
            return Ok(());
        }
        let fits = |resident: u64| resident - freed + bytes <= self.budget_bytes;
        if fits(tenants.resident_bytes) {
            return Ok(());
        }
        // Unpinned victims, least recently used first.
        let mut victims: Vec<(String, u64, u64)> = tenants
            .map
            .iter()
            .filter(|(n, _)| n.as_str() != DEFAULT_TENANT && n.as_str() != keep)
            .map(|(n, e)| (n.clone(), e.last_used.load(Ordering::Acquire), e.bytes))
            .collect();
        victims.sort_by_key(|(_, used, _)| *used);
        let mut resident = tenants.resident_bytes;
        let mut evict = Vec::new();
        for (name, _, victim_bytes) in victims {
            if fits(resident) {
                break;
            }
            resident -= victim_bytes;
            evict.push(name);
        }
        if !fits(resident) {
            return Err(ServeError::BudgetExceeded {
                needed: bytes,
                budget: self.budget_bytes,
            });
        }
        for name in evict {
            if let Some(entry) = tenants.map.remove(&name) {
                tenants.resident_bytes -= entry.bytes;
                clear_tenant_bytes(&name);
                metrics::STORE_EVICTIONS.inc_always();
            }
        }
        tenants.set_gauge();
        Ok(())
    }

    /// Evicts tenant `name`, returning whether it was resident. The
    /// default tenant is pinned and never evicted (`false`). In-flight
    /// batches holding the snapshot `Arc` are unaffected.
    pub fn evict_tenant(&self, name: &str) -> bool {
        if name == DEFAULT_TENANT {
            return false;
        }
        let mut tenants = self.tenants.write().expect("registry lock poisoned");
        match tenants.map.remove(name) {
            Some(entry) => {
                tenants.resident_bytes -= entry.bytes;
                tenants.set_gauge();
                clear_tenant_bytes(name);
                metrics::STORE_EVICTIONS.inc_always();
                true
            }
            None => false,
        }
    }

    /// Cards for every resident tenant, default first, then by name.
    pub fn tenants(&self) -> Vec<TenantInfo> {
        let tenants = self.tenants.read().expect("registry lock poisoned");
        let mut infos: Vec<TenantInfo> = tenants
            .map
            .iter()
            .map(|(name, e)| TenantInfo {
                tenant: name.clone(),
                tag: e.snapshot.tag.clone(),
                generation: e.generation,
                bytes: e.bytes,
            })
            .collect();
        infos.sort_by(|a, b| {
            (a.tenant.as_str() != DEFAULT_TENANT, a.tenant.as_str())
                .cmp(&(b.tenant.as_str() != DEFAULT_TENANT, b.tenant.as_str()))
        });
        infos
    }

    /// Atomically installs `snapshot` as the default tenant's new model
    /// and returns its generation. In-flight readers keep their old `Arc`;
    /// the old model is dropped when the last of them finishes.
    ///
    /// # Errors
    /// [`ServeError::BudgetExceeded`] when the new default cannot fit the
    /// budget even with every unpinned tenant evicted.
    pub fn try_swap(&self, snapshot: ModelSnapshot) -> Result<u64, ServeError> {
        // Cast + pack the f32 plan *before* taking the write lock: the
        // one-time conversion cost lands on the swap caller, never on a
        // reader or an in-flight batch.
        if self.precision == EnginePrecision::F32 {
            snapshot.classifier.warm_f32();
        }
        let bytes = snapshot.resident_cost();
        let mut tenants = self.tenants.write().expect("registry lock poisoned");
        let freed = tenants.map.get(DEFAULT_TENANT).map_or(0, |e| e.bytes);
        self.make_room(&mut tenants, bytes, freed, DEFAULT_TENANT)?;
        let generation = self.installs.fetch_add(1, Ordering::AcqRel) + 1;
        if let Some(old) = tenants.map.insert(
            DEFAULT_TENANT.to_string(),
            TenantEntry {
                snapshot: Arc::new(snapshot),
                generation,
                bytes,
                last_used: AtomicU64::new(self.tick()),
            },
        ) {
            tenants.resident_bytes -= old.bytes;
        }
        tenants.resident_bytes += bytes;
        tenants.set_gauge();
        set_tenant_bytes(DEFAULT_TENANT, bytes);
        metrics::SERVE_SWAPS.inc_always();
        metrics::SERVE_GENERATION.set_always(generation);
        Ok(generation)
    }

    /// [`ModelRegistry::try_swap`] for unbudgeted registries (the original
    /// single-model API).
    ///
    /// # Panics
    /// Panics if a configured budget cannot fit the new default model —
    /// budgeted callers should use [`ModelRegistry::try_swap`].
    pub fn swap(&self, snapshot: ModelSnapshot) -> u64 {
        self.try_swap(snapshot)
            .expect("default model exceeds the registry byte budget")
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::AcqRel) + 1
    }
}

fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use targad_core::{TargAd, TargAdConfig};
    use targad_data::GeneratorSpec;

    fn snapshot(tag: &str) -> ModelSnapshot {
        let bundle = GeneratorSpec::quick_demo().generate(17);
        let mut model = TargAd::try_new(TargAdConfig::fast()).expect("valid config");
        model.fit(&bundle.train, 17).expect("fit");
        let thresholds = model
            .calibrate_thresholds(&bundle.val.features, &bundle.val.three_way_labels())
            .expect("calibrate");
        ModelSnapshot::new(model.classifier().unwrap().clone(), thresholds, tag)
    }

    #[test]
    fn swap_bumps_generation_and_replaces_snapshot() {
        let registry = ModelRegistry::new(snapshot("a"));
        let (s1, g1) = registry.current();
        assert_eq!(g1, 1);
        assert_eq!(s1.tag, "a");
        assert!(s1.thresholds.is_complete());

        let g2 = registry.swap(snapshot("b"));
        assert_eq!(g2, 2);
        let (s2, g) = registry.current();
        assert_eq!(g, 2);
        assert_eq!(s2.tag, "b");
        // The old handle is still alive and still scores.
        assert_eq!(s1.tag, "a");
    }

    #[test]
    fn tenant_names_are_validated() {
        for good in ["a", "merchant-42", "A_b-C", &"x".repeat(64)] {
            assert!(valid_tenant_name(good), "{good}");
        }
        for bad in ["", "../etc", "a b", "a/b", "a\n", &"x".repeat(65)] {
            assert!(!valid_tenant_name(bad), "{bad:?}");
        }
        let registry = ModelRegistry::new(snapshot("a"));
        assert!(matches!(
            registry.resolve(Some("../etc")),
            Err(ServeError::BadRequest(_))
        ));
        assert!(matches!(
            registry.resolve(Some("ghost")),
            Err(ServeError::UnknownTenant(_))
        ));
    }

    #[test]
    fn lru_eviction_keeps_resident_bytes_under_budget() {
        let default = snapshot("default");
        let unit = snapshot("unit").resident_cost();
        // Room for the pinned default plus two tenants, not three.
        let budget = default.resident_cost() + 2 * unit + unit / 2;
        let registry =
            ModelRegistry::with_options(default, EnginePrecision::F64, budget, None).unwrap();

        registry.load_tenant("t1", snapshot("m1")).unwrap();
        registry.load_tenant("t2", snapshot("m2")).unwrap();
        assert!(registry.resident_bytes() <= budget);

        // Touch t1 so t2 is the LRU victim.
        registry.resolve(Some("t1")).unwrap();
        registry.load_tenant("t3", snapshot("m3")).unwrap();
        assert!(registry.resident_bytes() <= budget);

        let names: Vec<String> = registry.tenants().into_iter().map(|t| t.tenant).collect();
        assert_eq!(names, vec!["default", "t1", "t3"]);

        // A registry whose pinned default cannot fit at all is rejected.
        let before = registry.tenants().len();
        let err =
            match ModelRegistry::with_options(snapshot("too-big"), EnginePrecision::F64, 1, None) {
                Err(e) => e,
                Ok(_) => panic!("oversized default must be rejected"),
            };
        assert!(matches!(err, ServeError::BudgetExceeded { .. }));
        assert_eq!(registry.tenants().len(), before);
    }

    #[test]
    fn eviction_never_tears_a_held_snapshot() {
        let registry = ModelRegistry::new(snapshot("default"));
        registry.load_tenant("t1", snapshot("m1")).unwrap();
        let (held, generation) = registry.resolve(Some("t1")).unwrap();
        assert!(registry.evict_tenant("t1"));
        assert!(!registry.evict_tenant("t1"), "already gone");
        assert!(!registry.evict_tenant(DEFAULT_TENANT), "default is pinned");
        // The held Arc still scores after eviction.
        assert_eq!(held.tag, "m1");
        assert!(generation >= 2);
        let x = targad_linalg::Matrix::zeros(1, held.classifier.input_dim());
        assert!(held.classifier.target_scores(&x)[0].is_finite());
        assert!(matches!(
            registry.resolve(Some("t1")),
            Err(ServeError::UnknownTenant(_))
        ));
    }
}
