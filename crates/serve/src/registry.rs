//! The model registry: fitted models behind generation-counted `Arc`
//! handles with atomic hot-swap.
//!
//! Readers grab `(Arc<ModelSnapshot>, generation)` under a read lock —
//! never torn, never blocking a swap for longer than the clone of an `Arc`.
//! A swap installs a new snapshot under the write lock and bumps the
//! generation; batches already holding the old `Arc` finish on the model
//! they started with, which is exactly the "hot-swap loses zero requests"
//! contract the serving layer promises.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use targad_core::{Classifier, EnginePrecision, ThresholdCache};

/// One immutable, decision-ready model: the trained classifier plus the
/// §III-C thresholds calibrated for it. Snapshots carry everything a
/// request needs, so the score path does zero calibration work.
#[derive(Clone)]
pub struct ModelSnapshot {
    /// The trained `m + k`-way classifier.
    pub classifier: Classifier,
    /// Calibrated per-strategy thresholds (see
    /// [`targad_core::TargAd::calibrate_thresholds`]).
    pub thresholds: ThresholdCache,
    /// Operator-chosen label for this model version (surfaced by
    /// `/model`).
    pub tag: String,
}

impl ModelSnapshot {
    /// Bundles a classifier with its calibrated thresholds under `tag`.
    pub fn new(classifier: Classifier, thresholds: ThresholdCache, tag: impl Into<String>) -> Self {
        Self {
            classifier,
            thresholds,
            tag: tag.into(),
        }
    }
}

/// Generation-counted current model with atomic hot-swap.
pub struct ModelRegistry {
    current: RwLock<Arc<ModelSnapshot>>,
    generation: AtomicU64,
    precision: EnginePrecision,
}

impl ModelRegistry {
    /// A registry serving `snapshot` as generation 1, scoring in f64.
    pub fn new(snapshot: ModelSnapshot) -> Self {
        Self::with_precision(snapshot, EnginePrecision::F64)
    }

    /// A registry serving `snapshot` as generation 1 at `precision`.
    ///
    /// Under [`EnginePrecision::F32`] the snapshot's weights are cast and
    /// panel-packed for the SIMD kernels *here* — once per installed model,
    /// at insert and at every [`ModelRegistry::swap`] — so no request ever
    /// pays the cast.
    pub fn with_precision(snapshot: ModelSnapshot, precision: EnginePrecision) -> Self {
        targad_obs::metrics::SERVE_GENERATION.set(1);
        if precision == EnginePrecision::F32 {
            snapshot.classifier.warm_f32();
        }
        Self {
            current: RwLock::new(Arc::new(snapshot)),
            generation: AtomicU64::new(1),
            precision,
        }
    }

    /// The precision every batch scored off this registry uses.
    pub fn precision(&self) -> EnginePrecision {
        self.precision
    }

    /// The current snapshot and its generation, read consistently: the
    /// pair is taken under one read lock, so a concurrent swap can never
    /// pair snapshot N with generation N+1.
    pub fn current(&self) -> (Arc<ModelSnapshot>, u64) {
        let guard = self.current.read().expect("registry lock poisoned");
        // Generation is read while still holding the lock; swaps bump it
        // under the write lock, so the pair is consistent.
        let generation = self.generation.load(Ordering::Acquire);
        (Arc::clone(&guard), generation)
    }

    /// The current generation (1-based, monotonically increasing).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Atomically installs `snapshot` as the new current model and returns
    /// its generation. In-flight readers keep their old `Arc`; the old
    /// model is dropped when the last of them finishes.
    pub fn swap(&self, snapshot: ModelSnapshot) -> u64 {
        // Cast + pack the f32 plan *before* taking the write lock: the
        // one-time conversion cost lands on the swap caller, never on a
        // reader or an in-flight batch.
        if self.precision == EnginePrecision::F32 {
            snapshot.classifier.warm_f32();
        }
        let mut guard = self.current.write().expect("registry lock poisoned");
        let generation = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        *guard = Arc::new(snapshot);
        targad_obs::metrics::SERVE_SWAPS.inc();
        targad_obs::metrics::SERVE_GENERATION.set(generation);
        generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use targad_core::{TargAd, TargAdConfig};
    use targad_data::GeneratorSpec;

    fn snapshot(tag: &str) -> ModelSnapshot {
        let bundle = GeneratorSpec::quick_demo().generate(17);
        let mut model = TargAd::try_new(TargAdConfig::fast()).expect("valid config");
        model.fit(&bundle.train, 17).expect("fit");
        let thresholds = model
            .calibrate_thresholds(&bundle.val.features, &bundle.val.three_way_labels())
            .expect("calibrate");
        ModelSnapshot::new(model.classifier().unwrap().clone(), thresholds, tag)
    }

    #[test]
    fn swap_bumps_generation_and_replaces_snapshot() {
        let registry = ModelRegistry::new(snapshot("a"));
        let (s1, g1) = registry.current();
        assert_eq!(g1, 1);
        assert_eq!(s1.tag, "a");
        assert!(s1.thresholds.is_complete());

        let g2 = registry.swap(snapshot("b"));
        assert_eq!(g2, 2);
        let (s2, g) = registry.current();
        assert_eq!(g, 2);
        assert_eq!(s2.tag, "b");
        // The old handle is still alive and still scores.
        assert_eq!(s1.tag, "a");
    }
}
