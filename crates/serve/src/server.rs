//! The HTTP front end: routing, request/response bodies, and lifecycle.
//!
//! | Route | Method | Purpose |
//! |---|---|---|
//! | `/score` | POST | Score rows (optionally for a named `tenant`); one full verdict per row |
//! | `/admin/swap` | POST | Hot-swap the default model from a v3 binary or v2 text snapshot |
//! | `/admin/load` | POST | Admit (or replace) a named tenant's model from a snapshot file |
//! | `/admin/evict` | POST | Evict a named tenant from the resident LRU |
//! | `/admin/tenants` | GET | Resident tenants, their bytes, and the budget |
//! | `/model` | GET | Default model's tag, generation, shape, thresholds |
//! | `/healthz` | GET | Liveness plus current generation |
//! | `/metrics` | GET | Prometheus text exposition (per-tenant series included) |
//! | `/metrics.json` | GET | The `targad-obs` metrics snapshot as JSON |
//!
//! The server is thread-per-connection with keep-alive (no async runtime —
//! the repo builds offline), a nonblocking accept loop polled against the
//! shutdown flag, and per-connection read timeouts so shutdown never hangs
//! on an idle peer. [`ServerHandle::shutdown`] stops accepting, joins every
//! connection, then drains the batcher — queued requests are answered, not
//! dropped.
//!
//! Every `/score` request gets a process-unique request id (echoed in the
//! response as `request_id`), and — when
//! [`ServeConfig::access_log`](crate::ServeConfig) is set — one JSONL
//! access-log line carrying the id, tenant, row and verdict counts,
//! per-phase nanoseconds from the request trace, and the HTTP status. The
//! exposition endpoints are unauthenticated read-only; set
//! [`ServeConfig::metrics_loopback_only`](crate::ServeConfig) to restrict
//! them to loopback peers. `/metrics` renders into a per-server reused
//! buffer, so steady-state scrapes allocate nothing.

use std::fs::File;
use std::io::{BufRead as _, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use targad_core::{
    snapshot as core_snapshot, EnginePrecision, OodStrategy, TargAdError, VerdictCounts,
};
use targad_obs::{labeled, metrics, RequestTrace, ServePhase};
use targad_runtime::Runtime;

use crate::batcher::MicroBatcher;
use crate::config::{ServeConfig, ServeError};
use crate::http::{read_request, write_response, Request};
use crate::json::{escape, Json};
use crate::registry::{ModelRegistry, ModelSnapshot, DEFAULT_TENANT};

/// How often blocked I/O paths re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Read timeout once a request's first byte has arrived. Short poll
/// timeouts apply only *between* requests (where a timeout cannot lose
/// data); mid-request a slow peer — a TCP retransmit, a request split
/// across packets — gets this long, and a timeout then closes the
/// connection rather than re-entering the parser mid-stream with the
/// partial read discarded. Shutdown may wait up to this long for a
/// connection that is mid-request.
const REQUEST_READ_TIMEOUT: Duration = Duration::from_secs(5);

/// Stable wire name of a strategy (`msp` / `es` / `ed`), the inverse of
/// [`OodStrategy::parse`].
pub(crate) fn wire_name(strategy: OodStrategy) -> &'static str {
    match strategy {
        OodStrategy::Msp => "msp",
        OodStrategy::EnergyScore => "es",
        OodStrategy::EnergyDiscrepancy => "ed",
    }
}

/// The serve-layer entry point. See [`Server::start`].
pub struct Server;

impl Server {
    /// Validates `config`, binds the listener, installs `snapshot` as
    /// generation 1, and starts the batcher worker plus the accept loop.
    /// Returns a handle owning the whole lifecycle.
    ///
    /// # Errors
    /// [`ServeError::InvalidConfig`] or [`ServeError::Io`] (bind failure).
    pub fn start(
        config: ServeConfig,
        snapshot: ModelSnapshot,
        runtime: Runtime,
    ) -> Result<ServerHandle, ServeError> {
        config.try_validate()?;
        let access_log = match &config.access_log {
            Some(path) => Some(Mutex::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            )),
            None => None,
        };
        let listener = TcpListener::bind((config.host.as_str(), config.port as u16))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let registry = Arc::new(ModelRegistry::with_options(
            snapshot,
            config.precision,
            config.model_budget_bytes,
            config.store_dir.clone(),
        )?);
        let batcher = Arc::new(MicroBatcher::start(&config, Arc::clone(&registry), runtime));
        let shutdown = Arc::new(AtomicBool::new(false));
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let ctx = Arc::new(Context {
            registry: Arc::clone(&registry),
            batcher: Arc::clone(&batcher),
            shutdown: Arc::clone(&shutdown),
            default_strategy: config.default_strategy,
            precision: config.precision,
            admin_token: config.admin_token.clone(),
            access_log,
            metrics_loopback_only: config.metrics_loopback_only,
            request_seq: AtomicU64::new(0),
            prom_buf: Mutex::new(String::new()),
        });
        let accept_ctx = Arc::clone(&ctx);
        let accept_connections = Arc::clone(&connections);
        let accept = std::thread::Builder::new()
            .name("targad-serve-accept".into())
            .spawn(move || accept_loop(listener, accept_ctx, accept_connections))
            .map_err(|e| ServeError::Io(e.to_string()))?;

        Ok(ServerHandle {
            addr,
            registry,
            batcher,
            shutdown,
            accept: Some(accept),
            connections,
        })
    }
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    registry: Arc<ModelRegistry>,
    batcher: Arc<MicroBatcher>,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (reads the ephemeral port when `port = 0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The model registry, for in-process hot-swap and inspection.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// The batcher, for stats and in-process scoring.
    pub fn batcher(&self) -> &Arc<MicroBatcher> {
        &self.batcher
    }

    /// Stops accepting connections, joins every connection thread, and
    /// drains the batcher. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let handles: Vec<_> = self
            .connections
            .lock()
            .expect("connections lock poisoned")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
        self.batcher.shutdown();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Everything a connection handler needs.
struct Context {
    registry: Arc<ModelRegistry>,
    batcher: Arc<MicroBatcher>,
    shutdown: Arc<AtomicBool>,
    default_strategy: OodStrategy,
    precision: EnginePrecision,
    admin_token: Option<String>,
    /// Opened in append mode at start; one JSONL line per `/score`.
    access_log: Option<Mutex<File>>,
    /// Restrict `/metrics` and `/metrics.json` to loopback peers.
    metrics_loopback_only: bool,
    /// Process-unique `/score` request ids (1-based).
    request_seq: AtomicU64,
    /// Reused Prometheus render buffer: after the first scrape grows it,
    /// steady-state `/metrics` responses allocate nothing.
    prom_buf: Mutex<String>,
}

impl Context {
    /// Appends one line to the access log (no-op when not configured).
    /// Log I/O failures are swallowed: observability must never fail a
    /// scoring request.
    fn log_access(&self, line: &str) {
        if let Some(log) = &self.access_log {
            let mut file = log.lock().unwrap_or_else(|e| e.into_inner());
            let _ = file.write_all(line.as_bytes());
            let _ = file.write_all(b"\n");
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    ctx: Arc<Context>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_ctx = Arc::clone(&ctx);
                let mut connections = connections.lock().expect("connections lock poisoned");
                // Reap finished connection threads so a long-lived server
                // with many short-lived connections does not grow this
                // list (and the final shutdown join) without bound.
                connections.retain(|handle| !handle.is_finished());
                if let Ok(handle) = std::thread::Builder::new()
                    .name("targad-serve-conn".into())
                    .spawn(move || connection_loop(stream, conn_ctx))
                {
                    connections.push(handle);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if ctx.shutdown.load(Ordering::Acquire) {
                    return;
                }
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => {
                if ctx.shutdown.load(Ordering::Acquire) {
                    return;
                }
                std::thread::sleep(POLL_INTERVAL);
            }
        }
    }
}

fn connection_loop(stream: TcpStream, ctx: Arc<Context>) {
    if stream.set_nonblocking(false).is_err() || stream.set_nodelay(true).is_err() {
        return;
    }
    let peer_is_loopback = stream
        .peer_addr()
        .map(|a| a.ip().is_loopback())
        .unwrap_or(false);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    // `writer` and the BufReader's inner stream share one socket, so
    // set_read_timeout through either applies to both.
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        if ctx.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Between requests: poll for the next request's first byte in
        // short bounded reads so an idle keep-alive peer cannot outlive
        // shutdown. fill_buf only peeks — nothing is consumed — so a
        // timeout here cannot discard request bytes.
        if writer.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
            return;
        }
        match reader.fill_buf() {
            // Peer closed an idle connection.
            Ok([]) => return,
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Idle poll; loop re-checks the shutdown flag.
                continue;
            }
            Err(_) => return,
        }
        // A request has started: give the peer the full request window.
        if writer.set_read_timeout(Some(REQUEST_READ_TIMEOUT)).is_err() {
            return;
        }
        match read_request(&mut reader) {
            Ok(Some(request)) => {
                let keep_alive = !request.wants_close();
                let wrote = if request.method == "GET" && request.path == "/metrics" {
                    serve_prometheus(&mut writer, &ctx, peer_is_loopback, keep_alive)
                } else {
                    let (status, body) = route(&request, &ctx, peer_is_loopback);
                    write_response(
                        &mut writer,
                        status,
                        body.as_bytes(),
                        "application/json",
                        keep_alive,
                    )
                };
                if wrote.is_err() || !keep_alive {
                    return;
                }
            }
            Ok(None) => return,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Mid-request stall past the window: the stream position
                // is undefined (partial reads were discarded), so close
                // instead of parsing leftovers as a fresh request.
                return;
            }
            Err(_) => {
                let _ = write_response(
                    &mut writer,
                    400,
                    error_body("malformed request").as_bytes(),
                    "application/json",
                    false,
                );
                return;
            }
        }
    }
}

fn error_body(message: &str) -> String {
    format!("{{\"error\": \"{}\"}}", escape(message))
}

/// `GET /metrics` — Prometheus text exposition, written straight from the
/// server's reused render buffer (no per-scrape body allocation once the
/// buffer has grown to steady-state size).
fn serve_prometheus(
    writer: &mut TcpStream,
    ctx: &Context,
    peer_is_loopback: bool,
    keep_alive: bool,
) -> std::io::Result<()> {
    if ctx.metrics_loopback_only && !peer_is_loopback {
        return write_response(
            writer,
            403,
            error_body("metrics are restricted to loopback peers").as_bytes(),
            "application/json",
            keep_alive,
        );
    }
    let mut buf = ctx.prom_buf.lock().unwrap_or_else(|e| e.into_inner());
    targad_obs::prom::render_into(&mut buf);
    write_response(
        writer,
        200,
        buf.as_bytes(),
        "text/plain; version=0.0.4; charset=utf-8",
        keep_alive,
    )
}

/// Whether `request` may hit admin routes: the configured token must match
/// (compared in constant time), or — when no token is configured — the
/// peer must be loopback, so a default deployment never exposes
/// filesystem-touching routes beyond the host.
fn authorize_admin(request: &Request, ctx: &Context, peer_is_loopback: bool) -> bool {
    match &ctx.admin_token {
        Some(token) => {
            let presented = request.header("x-admin-token").unwrap_or("").as_bytes();
            let expected = token.as_bytes();
            presented.len() == expected.len()
                && presented
                    .iter()
                    .zip(expected)
                    .fold(0u8, |acc, (a, b)| acc | (a ^ b))
                    == 0
        }
        None => peer_is_loopback,
    }
}

fn route(request: &Request, ctx: &Context, peer_is_loopback: bool) -> (u16, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => (
            200,
            format!(
                "{{\"status\": \"ok\", \"generation\": {}}}",
                ctx.registry.generation()
            ),
        ),
        ("GET", "/metrics.json") if ctx.metrics_loopback_only && !peer_is_loopback => {
            (403, error_body("metrics are restricted to loopback peers"))
        }
        ("GET", "/metrics.json") => (200, targad_obs::metrics::snapshot_json()),
        ("GET", "/model") => (200, model_body(ctx)),
        ("POST", "/score") => score_route(request, ctx),
        ("POST", "/admin/swap" | "/admin/load" | "/admin/evict") | ("GET", "/admin/tenants")
            if !authorize_admin(request, ctx, peer_is_loopback) =>
        {
            (403, error_body(&ServeError::Unauthorized.to_string()))
        }
        ("POST", "/admin/swap") => match handle_swap(request, ctx) {
            Ok(body) => (200, body),
            Err(e) => (status_of(&e), error_body(&e.to_string())),
        },
        ("POST", "/admin/load") => match handle_load(request, ctx) {
            Ok(body) => (200, body),
            Err(e) => (status_of(&e), error_body(&e.to_string())),
        },
        ("POST", "/admin/evict") => match handle_evict(request, ctx) {
            Ok(body) => (200, body),
            Err(e) => (status_of(&e), error_body(&e.to_string())),
        },
        ("GET", "/admin/tenants") => (200, tenants_body(ctx)),
        ("GET" | "POST", _) => (404, error_body("no such route")),
        _ => (405, error_body("method not allowed")),
    }
}

fn status_of(e: &ServeError) -> u16 {
    match e {
        ServeError::Overloaded | ServeError::ShuttingDown => 503,
        ServeError::BadRequest(_) | ServeError::Model(_) => 400,
        ServeError::Unauthorized => 403,
        ServeError::UnknownTenant(_) => 404,
        ServeError::BudgetExceeded { .. } => 507,
        ServeError::InvalidConfig { .. } | ServeError::Io(_) => 500,
    }
}

fn model_body(ctx: &Context) -> String {
    let (snapshot, generation) = ctx.registry.current();
    let clf = &snapshot.classifier;
    let taus: Vec<String> = OodStrategy::all()
        .into_iter()
        .map(|s| {
            let value = snapshot
                .thresholds
                .get(s)
                .map_or("null".into(), |t| format!("{t:?}"));
            format!("\"{}\": {value}", wire_name(s))
        })
        .collect();
    format!(
        "{{\"tag\": \"{}\", \"generation\": {generation}, \"m\": {}, \"k\": {}, \"input_dim\": {}, \"precision\": \"{}\", \"thresholds\": {{{}}}}}",
        escape(&snapshot.tag),
        clf.m(),
        clf.k(),
        clf.input_dim(),
        ctx.precision.name(),
        taus.join(", ")
    )
}

/// What the access log needs from one `/score` request, filled in as the
/// handler learns it (`"-"` tenant = the request failed before tenant
/// parsing).
struct ScoreLogInfo {
    tenant: String,
    label: Option<targad_obs::LabelId>,
    rows: usize,
    counts: VerdictCounts,
    trace: RequestTrace,
}

/// `POST /score` with request-id assignment, latency accounting, and the
/// JSONL access-log line.
fn score_route(request: &Request, ctx: &Context) -> (u16, String) {
    let started = Instant::now();
    let request_id = ctx.request_seq.fetch_add(1, Ordering::AcqRel) + 1;
    let mut info = ScoreLogInfo {
        tenant: "-".into(),
        label: None,
        rows: 0,
        counts: VerdictCounts::default(),
        trace: RequestTrace::disabled(),
    };
    let (status, body) = match handle_score(request, ctx, request_id, &mut info) {
        Ok(body) => (200, body),
        Err(e) => (status_of(&e), error_body(&e.to_string())),
    };
    let request_ns = elapsed_ns(started);
    metrics::SERVE_REQUEST_NS.record_always(request_ns);
    if status == 200 {
        if let Some(label) = info.label {
            labeled::TENANT_REQUEST_NS.record(label, request_ns);
        }
    }
    if ctx.access_log.is_some() {
        let phases: Vec<String> = ServePhase::ALL
            .iter()
            .map(|&p| format!("\"{}\": {}", p.name(), info.trace.phase_ns(p)))
            .collect();
        ctx.log_access(&format!(
            "{{\"request_id\": {request_id}, \"tenant\": \"{}\", \"rows\": {}, \"status\": {status}, \"verdicts\": {{\"normal\": {}, \"target\": {}, \"non_target\": {}}}, {}, \"request_ns\": {request_ns}}}",
            escape(&info.tenant),
            info.rows,
            info.counts.normal,
            info.counts.target,
            info.counts.non_target,
            phases.join(", ")
        ));
    }
    (status, body)
}

/// `POST /score` — body `{"rows": [[f64; D]; N], "ood_strategy": "msp"?,
/// "tenant": "…"?}`. An omitted tenant scores on the pinned default model.
fn handle_score(
    request: &Request,
    ctx: &Context,
    request_id: u64,
    info: &mut ScoreLogInfo,
) -> Result<String, ServeError> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| ServeError::BadRequest("body is not utf-8".into()))?;
    let doc = Json::parse(text).map_err(ServeError::BadRequest)?;
    let tenant = match doc.get("tenant") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_str()
                .ok_or_else(|| ServeError::BadRequest("tenant must be a string".into()))?,
        ),
    };
    info.tenant.clear();
    info.tenant.push_str(tenant.unwrap_or(DEFAULT_TENANT));
    let strategy = match doc.get("ood_strategy") {
        None | Some(Json::Null) => ctx.default_strategy,
        Some(v) => {
            let name = v
                .as_str()
                .ok_or_else(|| ServeError::BadRequest("ood_strategy must be a string".into()))?;
            OodStrategy::parse(name)
                .ok_or_else(|| ServeError::BadRequest(format!("unknown ood_strategy `{name}`")))?
        }
    };
    let rows = doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| ServeError::BadRequest("missing `rows` array".into()))?;
    if rows.is_empty() {
        return Err(ServeError::BadRequest("`rows` is empty".into()));
    }
    let mut dims = 0;
    let mut data = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let cells = row
            .as_arr()
            .ok_or_else(|| ServeError::BadRequest(format!("row {i} is not an array")))?;
        if i == 0 {
            dims = cells.len();
            data.reserve(rows.len() * dims);
        } else if cells.len() != dims {
            return Err(ServeError::BadRequest(format!(
                "row {i} has {} values, row 0 has {dims}",
                cells.len()
            )));
        }
        for (j, cell) in cells.iter().enumerate() {
            let v = cell
                .as_f64()
                .ok_or_else(|| ServeError::BadRequest(format!("row {i}[{j}] is not a number")))?;
            if !v.is_finite() {
                return Err(ServeError::BadRequest(format!(
                    "row {i}[{j}] is not finite"
                )));
            }
            data.push(v);
        }
    }
    if dims == 0 {
        return Err(ServeError::BadRequest("rows have zero columns".into()));
    }
    info.rows = rows.len();

    let outcome = ctx.batcher.submit_traced(
        tenant,
        data,
        rows.len(),
        dims,
        strategy,
        RequestTrace::begin(),
    )?;
    info.label = Some(outcome.tenant);
    info.counts = VerdictCounts::tally(outcome.rows.iter().map(|s| s.class));
    let scored = &outcome.rows;
    let mut trace = outcome.trace;
    let body = {
        let _serialize = trace.span(ServePhase::Serialize);
        let generation = scored.first().map_or(0, |s| s.generation);
        let verdicts: Vec<String> = scored
            .iter()
            .map(|s| {
                format!(
                    "{{\"score\": {:?}, \"class\": \"{}\", \"ood_strategy\": \"{}\", \"threshold\": {:?}}}",
                    s.score,
                    s.class.name(),
                    wire_name(s.strategy),
                    s.threshold
                )
            })
            .collect();
        format!(
            "{{\"request_id\": {request_id}, \"tenant\": \"{}\", \"model_generation\": {generation}, \"count\": {}, \"precision\": \"{}\", \"verdicts\": [{}]}}",
            escape(tenant.unwrap_or(DEFAULT_TENANT)),
            scored.len(),
            ctx.precision.name(),
            verdicts.join(", ")
        )
    };
    info.trace = trace;
    Ok(body)
}

fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Loads a snapshot file for an admin route: binary v3 (`targad-store`)
/// first, then the retained v2 text format. The path is client-supplied,
/// so neither it nor the raw load errors are echoed back — the routes
/// cannot be used to probe the server's filesystem.
fn load_snapshot_file(path: &str, tag: &str, ctx: &Context) -> Result<ModelSnapshot, ServeError> {
    let (classifier, thresholds) = match targad_store::load(path) {
        Ok(model) => (model.classifier, model.thresholds),
        Err(_) => core_snapshot::load_with_thresholds(path).map_err(|_| {
            ServeError::BadRequest(
                "cannot load snapshot (unreadable, or neither a v3 nor a v2 snapshot)".into(),
            )
        })?,
    };
    if thresholds.is_empty() {
        // A model with no calibrated thresholds can answer nothing; reject
        // the install instead of serving NotCalibrated on every request.
        return Err(ServeError::Model(TargAdError::NotCalibrated {
            strategy: ctx.default_strategy,
        }));
    }
    Ok(ModelSnapshot::new(classifier, thresholds, tag))
}

/// `POST /admin/swap` — body `{"path": "<snapshot file>", "tag": "…"?}`.
/// Accepts binary v3 and v2 text snapshots.
fn handle_swap(request: &Request, ctx: &Context) -> Result<String, ServeError> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| ServeError::BadRequest("body is not utf-8".into()))?;
    let doc = Json::parse(text).map_err(ServeError::BadRequest)?;
    let path = doc
        .get("path")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::BadRequest("missing `path`".into()))?;
    let tag = doc
        .get("tag")
        .and_then(Json::as_str)
        .unwrap_or(path)
        .to_string();
    let snapshot = load_snapshot_file(path, &tag, ctx)?;
    let generation = ctx.registry.try_swap(snapshot)?;
    Ok(format!(
        "{{\"generation\": {generation}, \"tag\": \"{}\"}}",
        escape(&tag)
    ))
}

/// `POST /admin/load` — body `{"tenant": "…", "path": "<snapshot file>",
/// "tag": "…"?}`. Admits (or replaces) the tenant's model under the LRU
/// byte budget; loading tenant `default` is a hot-swap.
fn handle_load(request: &Request, ctx: &Context) -> Result<String, ServeError> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| ServeError::BadRequest("body is not utf-8".into()))?;
    let doc = Json::parse(text).map_err(ServeError::BadRequest)?;
    let tenant = doc
        .get("tenant")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::BadRequest("missing `tenant`".into()))?;
    let path = doc
        .get("path")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::BadRequest("missing `path`".into()))?;
    let tag = doc
        .get("tag")
        .and_then(Json::as_str)
        .unwrap_or(tenant)
        .to_string();
    let snapshot = load_snapshot_file(path, &tag, ctx)?;
    let bytes = snapshot.resident_cost();
    let generation = ctx.registry.load_tenant(tenant, snapshot)?;
    Ok(format!(
        "{{\"tenant\": \"{}\", \"generation\": {generation}, \"bytes\": {bytes}, \"resident_bytes\": {}}}",
        escape(tenant),
        ctx.registry.resident_bytes()
    ))
}

/// `POST /admin/evict` — body `{"tenant": "…"}`. The default tenant is
/// pinned and cannot be evicted.
fn handle_evict(request: &Request, ctx: &Context) -> Result<String, ServeError> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| ServeError::BadRequest("body is not utf-8".into()))?;
    let doc = Json::parse(text).map_err(ServeError::BadRequest)?;
    let tenant = doc
        .get("tenant")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::BadRequest("missing `tenant`".into()))?;
    if tenant == DEFAULT_TENANT {
        return Err(ServeError::BadRequest(
            "the default tenant is pinned and cannot be evicted".into(),
        ));
    }
    if !ctx.registry.evict_tenant(tenant) {
        return Err(ServeError::UnknownTenant(tenant.to_string()));
    }
    Ok(format!(
        "{{\"tenant\": \"{}\", \"evicted\": true, \"resident_bytes\": {}}}",
        escape(tenant),
        ctx.registry.resident_bytes()
    ))
}

/// `GET /admin/tenants` — the resident LRU's contents and budget.
fn tenants_body(ctx: &Context) -> String {
    let rows: Vec<String> = ctx
        .registry
        .tenants()
        .into_iter()
        .map(|t| {
            format!(
                "{{\"tenant\": \"{}\", \"tag\": \"{}\", \"generation\": {}, \"bytes\": {}}}",
                escape(&t.tenant),
                escape(&t.tag),
                t.generation,
                t.bytes
            )
        })
        .collect();
    format!(
        "{{\"budget_bytes\": {}, \"resident_bytes\": {}, \"tenants\": [{}]}}",
        ctx.registry.budget_bytes(),
        ctx.registry.resident_bytes(),
        rows.join(", ")
    )
}

/// Blocking HTTP client for one connection — tests, the CI smoke job, and
/// the bench closed-loop driver reuse it (keep-alive across calls).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    host: String,
    admin_token: Option<String>,
}

impl Client {
    /// Connects to `addr`.
    ///
    /// # Errors
    /// Propagates connect errors.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
            host: addr.to_string(),
            admin_token: None,
        })
    }

    /// Sends `token` as `x-admin-token` on every subsequent request
    /// (required for `/admin/*` routes when the server has one
    /// configured).
    pub fn set_admin_token(&mut self, token: Option<String>) {
        self.admin_token = token;
    }

    /// Sends one request and reads the response.
    ///
    /// # Errors
    /// Propagates stream errors and malformed response framing.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> std::io::Result<crate::http::Response> {
        let mut headers: Vec<(&str, &str)> = Vec::new();
        if let Some(token) = &self.admin_token {
            headers.push(("x-admin-token", token));
        }
        crate::http::write_request(
            &mut self.writer,
            method,
            path,
            &self.host,
            &headers,
            body.as_bytes(),
        )?;
        self.writer.flush()?;
        crate::http::read_response(&mut self.reader)
    }
}
