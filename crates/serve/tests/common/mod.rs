//! Shared fixtures for the serve integration tests: a quickly fitted,
//! fully calibrated model snapshot plus held-out rows to score.

use targad_core::{OodStrategy, TargAd, TargAdConfig};
use targad_data::GeneratorSpec;
use targad_linalg::Matrix;
use targad_serve::ModelSnapshot;

/// Fits a small model on the demo generator, calibrates all three OOD
/// strategies, and returns the snapshot plus test-split features.
pub fn fitted_snapshot(seed: u64, tag: &str) -> (ModelSnapshot, Matrix) {
    let bundle = GeneratorSpec::quick_demo().generate(seed);
    let mut model = TargAd::try_new(TargAdConfig::fast()).expect("valid config");
    model.fit(&bundle.train, seed).expect("fit");
    let thresholds = model
        .calibrate_thresholds(&bundle.val.features, &bundle.val.three_way_labels())
        .expect("calibrate");
    assert!(thresholds.is_complete(), "all strategies calibrated");
    let snapshot = ModelSnapshot::new(model.classifier().unwrap().clone(), thresholds, tag);
    (snapshot, bundle.test.features)
}

/// Serializes tests that assert exact [`targad_serve::BatcherStats`]
/// deltas. Batcher stats are deltas over the process-global ungated
/// `serve.*` counters, so two concurrently scoring tests in one binary
/// would contaminate each other's counts. Take this guard at the top of
/// every test in a binary where any test asserts exact stats.
#[allow(dead_code)] // not every test binary uses every fixture
pub fn stats_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The calibrated tau a snapshot holds for `strategy`.
#[allow(dead_code)] // not every test binary uses every fixture
pub fn tau_of(snapshot: &ModelSnapshot, strategy: OodStrategy) -> f64 {
    snapshot.thresholds.get(strategy).expect("calibrated")
}

/// Flattens rows `[lo, hi)` of `x` into a row-major buffer.
#[allow(dead_code)] // not every test binary uses every fixture
pub fn flatten_rows(x: &Matrix, lo: usize, hi: usize) -> Vec<f64> {
    (lo..hi).flat_map(|r| x.row(r).to_vec()).collect()
}
