//! The f32 serving path end to end: a batcher over an
//! [`EnginePrecision::F32`] registry must reproduce the classifier's own
//! f32 verdict path bit-for-bit (coalescing never changes results in
//! either precision), stay decision-compatible with the f64 oracle on
//! held-out rows, and surface the precision over HTTP.

mod common;

use std::sync::Arc;
use std::time::Duration;

use targad_core::OodStrategy;
use targad_runtime::Runtime;
use targad_serve::{Client, EnginePrecision, MicroBatcher, ModelRegistry, ServeConfig, Server};

const ROWS: usize = 48;

#[test]
fn f32_batches_match_the_classifier_f32_path_bit_for_bit() {
    let _stats = common::stats_lock();
    let (snapshot, x_full) = common::fitted_snapshot(29, "f32-determinism");
    let dims = x_full.cols();
    let x = targad_linalg::Matrix::from_vec(ROWS, dims, common::flatten_rows(&x_full, 0, ROWS));
    let tau = common::tau_of(&snapshot, OodStrategy::Msp);
    let runtime = Runtime::new(2);
    let reference =
        snapshot
            .classifier
            .verdicts_rt_with_prec(&x, &runtime, EnginePrecision::F32, |_| {
                (OodStrategy::Msp, tau)
            });
    let oracle =
        snapshot
            .classifier
            .verdicts_rt_with_prec(&x, &runtime, EnginePrecision::F64, |_| {
                (OodStrategy::Msp, tau)
            });

    let registry = Arc::new(ModelRegistry::with_precision(
        snapshot.clone(),
        EnginePrecision::F32,
    ));
    assert_eq!(registry.precision(), EnginePrecision::F32);
    let config = ServeConfig::builder()
        .max_batch(64)
        .max_queue_wait(Duration::from_micros(200))
        .precision(EnginePrecision::F32)
        .build()
        .expect("valid config");
    let batcher = MicroBatcher::start(&config, Arc::clone(&registry), runtime);

    let batch = batcher
        .submit(
            common::flatten_rows(&x, 0, ROWS),
            ROWS,
            dims,
            OodStrategy::Msp,
        )
        .expect("batch submit");
    let singles: Vec<_> = (0..ROWS)
        .map(|r| {
            batcher
                .submit(x.row(r).to_vec(), 1, dims, OodStrategy::Msp)
                .expect("single submit")[0]
        })
        .collect();

    let mut agree = 0usize;
    for (r, ((b, s), (ref_score, ref_class))) in
        batch.iter().zip(&singles).zip(&reference).enumerate()
    {
        assert_eq!(
            b.score.to_bits(),
            ref_score.to_bits(),
            "row {r}: batched f32 score differs from the classifier f32 path"
        );
        assert_eq!(
            s.score.to_bits(),
            ref_score.to_bits(),
            "row {r}: single-row f32 score differs from the classifier f32 path"
        );
        assert_eq!(b.class, *ref_class, "row {r}: batched f32 class");
        assert_eq!(s.class, *ref_class, "row {r}: single f32 class");
        // Decision compatibility with the f64 oracle: scores within f32
        // rounding of the oracle, classes overwhelmingly identical.
        let (o_score, o_class) = oracle[r];
        assert!(
            (b.score - o_score).abs() < 1e-3,
            "row {r}: f32 score {} drifted from the f64 oracle {o_score}",
            b.score
        );
        agree += usize::from(b.class == o_class);
    }
    assert!(
        agree >= ROWS - 1,
        "f32/f64 verdict agreement collapsed: {agree}/{ROWS}"
    );
}

#[test]
fn f32_server_reports_its_precision_and_swaps_warm() {
    let _stats = common::stats_lock();
    let (snapshot, x) = common::fitted_snapshot(31, "f32-server");
    let config = ServeConfig::builder()
        .precision(EnginePrecision::F32)
        .build()
        .expect("valid config");
    let handle = Server::start(config, snapshot.clone(), Runtime::new(2)).expect("start server");
    let mut client = Client::connect(handle.addr()).expect("connect");

    let model = client.request("GET", "/model", "").expect("GET /model");
    assert_eq!(model.status, 200);
    assert!(
        model.text().contains("\"precision\": \"f32\""),
        "/model must name the scoring precision: {}",
        model.text()
    );

    let row: Vec<String> = x.row(0).iter().map(|v| format!("{v:?}")).collect();
    let body = format!("{{\"rows\": [[{}]]}}", row.join(", "));
    let scored = client
        .request("POST", "/score", &body)
        .expect("POST /score");
    assert_eq!(scored.status, 200, "{}", scored.text());
    assert!(
        scored.text().contains("\"precision\": \"f32\""),
        "/score must name the scoring precision: {}",
        scored.text()
    );

    // A hot-swap on an f32 registry warms the incoming snapshot's plan and
    // keeps serving; the swapped-in model scores the same row fine.
    let (snapshot2, _) = common::fitted_snapshot(32, "f32-gen2");
    let generation = handle.registry().swap(snapshot2);
    assert_eq!(generation, 2);
    let scored2 = client
        .request("POST", "/score", &body)
        .expect("POST /score after swap");
    assert_eq!(scored2.status, 200, "{}", scored2.text());
    assert!(scored2.text().contains("\"model_generation\": 2"));
    assert_eq!(
        handle.batcher().stats().rows,
        2,
        "both requests scored through the batcher"
    );
}
