//! Registry hot-swap under concurrent scoring: no request is lost, no
//! reader ever observes a torn (snapshot, generation) pair, and the
//! generation each scorer observes is monotonically non-decreasing.

mod common;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use targad_core::OodStrategy;
use targad_runtime::Runtime;
use targad_serve::{MicroBatcher, ModelRegistry, ServeConfig};

#[test]
fn hot_swap_under_concurrent_scoring_loses_nothing() {
    let (snap_a, x) = common::fitted_snapshot(17, "model-a");
    let (snap_b, _) = common::fitted_snapshot(99, "model-b");
    let tau_a = common::tau_of(&snap_a, OodStrategy::Msp);
    let tau_b = common::tau_of(&snap_b, OodStrategy::Msp);
    // The torn-read check below identifies the model by its threshold, so
    // the two snapshots must disagree on it.
    assert_ne!(tau_a.to_bits(), tau_b.to_bits(), "fixture taus must differ");

    let config = ServeConfig::builder()
        .max_batch(32)
        .max_queue_wait(Duration::from_micros(500))
        .queue_depth(4096)
        .build()
        .expect("valid config");
    let registry = Arc::new(ModelRegistry::new(snap_a.clone()));
    let batcher = Arc::new(MicroBatcher::start(
        &config,
        Arc::clone(&registry),
        Runtime::new(2),
    ));

    // Swaps alternate b, a, b, a, … so odd generations serve model a and
    // even generations serve model b — each reply's threshold must match
    // the model its generation names, or the (snapshot, generation) pair
    // was torn.
    let expected_tau = move |generation: u64| if generation % 2 == 1 { tau_a } else { tau_b };

    let stop = Arc::new(AtomicBool::new(false));
    let dims = x.cols();
    let scorers: Vec<_> = (0..4)
        .map(|t| {
            let batcher = Arc::clone(&batcher);
            let stop = Arc::clone(&stop);
            let x = x.clone();
            std::thread::spawn(move || {
                let mut scored = 0u64;
                let mut last_generation = 0u64;
                let mut i = t;
                while !stop.load(Ordering::Acquire) {
                    let lo = i % (x.rows() - 3);
                    let data = common::flatten_rows(&x, lo, lo + 3);
                    let rows = batcher
                        .submit(data, 3, dims, OodStrategy::Msp)
                        .expect("scoring during hot-swap must not fail");
                    assert_eq!(rows.len(), 3);
                    for row in &rows {
                        assert!(
                            row.generation >= last_generation,
                            "generation went backwards: {} after {last_generation}",
                            row.generation
                        );
                        last_generation = row.generation;
                        assert_eq!(
                            row.threshold.to_bits(),
                            expected_tau(row.generation).to_bits(),
                            "torn read: generation {} answered with the other model's tau",
                            row.generation
                        );
                        assert!(row.score.is_finite());
                    }
                    scored += 3;
                    i += 1;
                }
                scored
            })
        })
        .collect();

    const SWAPS: u64 = 24;
    for s in 0..SWAPS {
        let next = if s % 2 == 0 {
            snap_b.clone()
        } else {
            snap_a.clone()
        };
        let generation = registry.swap(next);
        assert_eq!(generation, s + 2, "generations are strictly sequential");
        std::thread::sleep(Duration::from_millis(2));
    }

    stop.store(true, Ordering::Release);
    let total: u64 = scorers.into_iter().map(|h| h.join().expect("scorer")).sum();
    assert!(total > 0, "scorers made progress during the swap storm");
    assert_eq!(registry.generation(), SWAPS + 1);

    // Shutdown drains cleanly with nothing queued left behind.
    batcher.shutdown();
    assert_eq!(batcher.depth(), 0);
    let stats = batcher.stats();
    assert_eq!(stats.rows, total, "every submitted row was scored");
}
