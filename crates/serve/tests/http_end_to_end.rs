//! Full-stack serving test: boot the server on an ephemeral port, score
//! over real HTTP, hot-swap via the admin route, and shut down cleanly.

mod common;

use std::time::Duration;

use targad_core::{snapshot as core_snapshot, OodStrategy};
use targad_runtime::Runtime;
use targad_serve::{Client, Json, ServeConfig, Server};

fn score_body(x: &targad_linalg::Matrix, lo: usize, hi: usize, strategy: Option<&str>) -> String {
    let rows: Vec<String> = (lo..hi)
        .map(|r| {
            let cells: Vec<String> = x.row(r).iter().map(|v| format!("{v:?}")).collect();
            format!("[{}]", cells.join(", "))
        })
        .collect();
    match strategy {
        Some(s) => format!(
            "{{\"rows\": [{}], \"ood_strategy\": \"{s}\"}}",
            rows.join(", ")
        ),
        None => format!("{{\"rows\": [{}]}}", rows.join(", ")),
    }
}

#[test]
fn serves_verdicts_swaps_models_and_shuts_down() {
    let (snap_a, x) = common::fitted_snapshot(31, "model-a");
    let (snap_b, _) = common::fitted_snapshot(77, "model-b");
    let tau_a = common::tau_of(&snap_a, OodStrategy::Msp);

    let config = ServeConfig::builder()
        .port(0)
        .max_batch(32)
        .max_queue_wait(Duration::from_micros(500))
        .build()
        .expect("valid config");
    let mut handle = Server::start(config, snap_a.clone(), Runtime::new(2)).expect("server boots");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Liveness and generation.
    let resp = client.request("GET", "/healthz", "").expect("healthz");
    assert_eq!(resp.status, 200);
    let doc = Json::parse(&resp.text()).expect("healthz json");
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(doc.get("generation").and_then(Json::as_f64), Some(1.0));

    // Scores over HTTP are bit-identical to the in-process reference path
    // (f64s round-trip exactly through the {:?} wire format).
    let reference = snap_a.classifier.verdicts(&x, OodStrategy::Msp, tau_a);
    let resp = client
        .request("POST", "/score", &score_body(&x, 0, 5, Some("msp")))
        .expect("score");
    assert_eq!(resp.status, 200, "body: {}", resp.text());
    let doc = Json::parse(&resp.text()).expect("score json");
    assert_eq!(
        doc.get("model_generation").and_then(Json::as_f64),
        Some(1.0)
    );
    assert_eq!(doc.get("count").and_then(Json::as_f64), Some(5.0));
    let verdicts = doc
        .get("verdicts")
        .and_then(Json::as_arr)
        .expect("verdicts");
    assert_eq!(verdicts.len(), 5);
    for (r, v) in verdicts.iter().enumerate() {
        let want = reference.verdict(r);
        assert_eq!(
            v.get("score").and_then(Json::as_f64),
            Some(want.score),
            "row {r} score"
        );
        assert_eq!(
            v.get("class").and_then(Json::as_str),
            Some(want.class.name()),
            "row {r} class"
        );
        assert_eq!(v.get("ood_strategy").and_then(Json::as_str), Some("msp"));
        assert_eq!(v.get("threshold").and_then(Json::as_f64), Some(tau_a));
    }

    // Omitted strategy falls back to the configured default (msp).
    let resp = client
        .request("POST", "/score", &score_body(&x, 0, 1, None))
        .expect("default strategy");
    assert_eq!(resp.status, 200);
    let doc = Json::parse(&resp.text()).expect("json");
    let v = &doc
        .get("verdicts")
        .and_then(Json::as_arr)
        .expect("verdicts")[0];
    assert_eq!(v.get("ood_strategy").and_then(Json::as_str), Some("msp"));

    // Every OOD strategy is selectable per request.
    for wire in ["es", "ed", "energy_score", "ENERGY_DISCREPANCY"] {
        let resp = client
            .request("POST", "/score", &score_body(&x, 0, 1, Some(wire)))
            .expect("strategy select");
        assert_eq!(resp.status, 200, "strategy {wire}: {}", resp.text());
    }

    // Model card.
    let resp = client.request("GET", "/model", "").expect("model");
    assert_eq!(resp.status, 200);
    let doc = Json::parse(&resp.text()).expect("model json");
    assert_eq!(doc.get("tag").and_then(Json::as_str), Some("model-a"));
    assert_eq!(
        doc.get("thresholds")
            .and_then(|t| t.get("msp"))
            .and_then(Json::as_f64),
        Some(tau_a)
    );

    // Prometheus exposition: text format with the serve series present.
    let resp = client.request("GET", "/metrics", "").expect("metrics");
    assert_eq!(resp.status, 200);
    let prom = resp.text();
    assert!(
        prom.contains("# TYPE targad_serve_requests_total counter"),
        "missing serve request counter: {prom}"
    );
    assert!(
        prom.contains("targad_serve_tenant_requests_total{tenant=\"default\"}"),
        "missing per-tenant series: {prom}"
    );
    // The JSON snapshot moved to /metrics.json.
    let resp = client
        .request("GET", "/metrics.json", "")
        .expect("metrics.json");
    assert_eq!(resp.status, 200);
    Json::parse(&resp.text()).expect("metrics json");

    // Client errors are 400s with an error body; unknown routes 404; bad
    // methods 405.
    let bad_cases = [
        ("POST", "/score", "{not json"),
        ("POST", "/score", "{\"rows\": []}"),
        ("POST", "/score", "{\"rows\": [[1.0], [1.0, 2.0]]}"),
        (
            "POST",
            "/score",
            "{\"rows\": [[1.0]], \"ood_strategy\": \"nope\"}",
        ),
        ("POST", "/score", "{\"rows\": [[\"x\"]]}"),
        ("POST", "/admin/swap", "{\"path\": \"/does/not/exist\"}"),
    ];
    for (method, path, body) in bad_cases {
        let resp = client.request(method, path, body).expect("bad request");
        assert_eq!(resp.status, 400, "{method} {path} {body}: {}", resp.text());
        assert!(Json::parse(&resp.text())
            .expect("error json")
            .get("error")
            .is_some());
    }
    // A dimension mismatch is a 400 too (model error, not server error).
    let wide = format!("{{\"rows\": [[{}]]}}", vec!["1.0"; x.cols() + 3].join(", "));
    let resp = client
        .request("POST", "/score", &wide)
        .expect("dim mismatch");
    assert_eq!(resp.status, 400, "{}", resp.text());

    let resp = client.request("GET", "/nope", "").expect("404");
    assert_eq!(resp.status, 404);
    let resp = client.request("DELETE", "/score", "").expect("405");
    assert_eq!(resp.status, 405);

    // Hot-swap over HTTP from a v2 snapshot file.
    let path = std::env::temp_dir().join(format!("targad-swap-{}.snapshot", std::process::id()));
    core_snapshot::save_with_thresholds(&snap_b.classifier, &snap_b.thresholds, &path)
        .expect("write snapshot");
    let body = format!(
        "{{\"path\": \"{}\", \"tag\": \"model-b\"}}",
        targad_serve::json::escape(&path.display().to_string())
    );
    let resp = client.request("POST", "/admin/swap", &body).expect("swap");
    assert_eq!(resp.status, 200, "{}", resp.text());
    let doc = Json::parse(&resp.text()).expect("swap json");
    assert_eq!(doc.get("generation").and_then(Json::as_f64), Some(2.0));
    std::fs::remove_file(&path).ok();

    // The swapped model serves immediately, stamped with its generation.
    let resp = client
        .request("POST", "/score", &score_body(&x, 0, 2, Some("msp")))
        .expect("score after swap");
    assert_eq!(resp.status, 200);
    let doc = Json::parse(&resp.text()).expect("json");
    assert_eq!(
        doc.get("model_generation").and_then(Json::as_f64),
        Some(2.0)
    );

    // Clean shutdown: joins the accept loop, every connection, and the
    // batcher worker.
    handle.shutdown();
}

/// A request split across packets with a long intra-request gap must still
/// parse: short poll timeouts only apply between requests, so a slow peer
/// (TCP retransmit, cross-packet body) is not torn mid-parse.
#[test]
fn slow_clients_are_not_torn_mid_request() {
    use std::io::{Read as _, Write as _};

    let (snap, x) = common::fitted_snapshot(13, "slow-model");
    let config = ServeConfig::builder().build().expect("valid config");
    let mut handle = Server::start(config, snap, Runtime::new(1)).expect("server boots");

    let body = score_body(&x, 0, 2, Some("msp"));
    let request = format!(
        "POST /score HTTP/1.1\r\nhost: t\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    let mut stream = std::net::TcpStream::connect(handle.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    // Drip the request in three chunks with gaps far beyond the 20 ms
    // idle-poll interval, cutting mid-request-line and mid-body.
    let bytes = request.as_bytes();
    let cuts = [8, bytes.len() - body.len() / 2];
    let mut sent = 0;
    for cut in cuts {
        stream.write_all(&bytes[sent..cut]).expect("write chunk");
        stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(120));
        sent = cut;
    }
    stream.write_all(&bytes[sent..]).expect("write tail");
    stream.flush().expect("flush");

    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    assert!(
        response.starts_with("HTTP/1.1 200"),
        "slow request got: {response}"
    );
    assert!(response.contains("\"verdicts\""), "body: {response}");
    handle.shutdown();
}

/// A deeply nested JSON body (~100 KB of `[`) must come back as a 400,
/// not overflow the connection thread's stack and abort the daemon.
#[test]
fn nesting_bomb_gets_a_400_and_the_server_survives() {
    let (snap, x) = common::fitted_snapshot(23, "bomb-model");
    let config = ServeConfig::builder().build().expect("valid config");
    let mut handle = Server::start(config, snap, Runtime::new(1)).expect("server boots");

    let mut client = Client::connect(handle.addr()).expect("connect");
    let bomb = format!("{{\"rows\": {}}}", "[".repeat(100_000));
    let resp = client
        .request("POST", "/score", &bomb)
        .expect("bomb response");
    assert_eq!(resp.status, 400, "{}", resp.text());
    assert!(resp.text().contains("nesting"), "{}", resp.text());

    // The process is still serving: a fresh connection scores normally.
    let mut probe = Client::connect(handle.addr()).expect("reconnect");
    let resp = probe
        .request("POST", "/score", &score_body(&x, 0, 1, None))
        .expect("score after bomb");
    assert_eq!(resp.status, 200, "{}", resp.text());
    handle.shutdown();
}

/// With an admin token configured, `/admin/*` requires the matching
/// `x-admin-token` header; score and health routes stay open.
#[test]
fn admin_routes_require_the_configured_token() {
    let (snap, x) = common::fitted_snapshot(19, "auth-model");
    let config = ServeConfig::builder()
        .admin_token(Some("s3cret".into()))
        .build()
        .expect("valid config");
    let mut handle = Server::start(config, snap, Runtime::new(1)).expect("server boots");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // No token → 403, and the body does not leak the path probe result.
    let resp = client
        .request("POST", "/admin/swap", "{\"path\": \"/etc/hostname\"}")
        .expect("swap without token");
    assert_eq!(resp.status, 403, "{}", resp.text());

    // Wrong token → 403.
    client.set_admin_token(Some("wrong".into()));
    let resp = client
        .request("POST", "/admin/swap", "{\"path\": \"/etc/hostname\"}")
        .expect("swap with wrong token");
    assert_eq!(resp.status, 403, "{}", resp.text());

    // Right token → the request reaches the handler (400: not a snapshot),
    // and the error body does not echo the client-supplied path.
    client.set_admin_token(Some("s3cret".into()));
    let resp = client
        .request("POST", "/admin/swap", "{\"path\": \"/etc/hostname\"}")
        .expect("swap with token");
    assert_eq!(resp.status, 400, "{}", resp.text());
    assert!(
        !resp.text().contains("/etc/hostname"),
        "error echoes the probed path: {}",
        resp.text()
    );

    // Non-admin routes are unaffected by the token setting.
    client.set_admin_token(None);
    let resp = client.request("GET", "/healthz", "").expect("healthz");
    assert_eq!(resp.status, 200);
    let resp = client
        .request("POST", "/score", &score_body(&x, 0, 1, None))
        .expect("score");
    assert_eq!(resp.status, 200, "{}", resp.text());
    handle.shutdown();
}
