//! Micro-batch determinism: a row scored through the batcher — alone, in
//! one big batch, or coalesced with other callers' rows — is bit-identical
//! to the reference (unfused) verdict path, at every thread count.

mod common;

use std::sync::{Arc, Barrier};
use std::time::Duration;

use targad_core::OodStrategy;
use targad_runtime::Runtime;
use targad_serve::{MicroBatcher, ModelRegistry, ScoredRow, ServeConfig};

const ROWS: usize = 48;

fn reference_verdicts(
    snapshot: &targad_serve::ModelSnapshot,
    x: &targad_linalg::Matrix,
) -> Vec<(f64, targad_core::VerdictClass)> {
    let tau = common::tau_of(snapshot, OodStrategy::Msp);
    let out = snapshot.classifier.verdicts(x, OodStrategy::Msp, tau);
    (0..out.len())
        .map(|i| {
            let v = out.verdict(i);
            (v.score, v.class)
        })
        .collect()
}

#[test]
fn batched_singles_and_coalesced_scores_are_bit_identical() {
    let _stats = common::stats_lock();
    let (snapshot, x_full) = common::fitted_snapshot(23, "determinism");
    let dims = x_full.cols();
    let x = targad_linalg::Matrix::from_vec(ROWS, dims, common::flatten_rows(&x_full, 0, ROWS));
    let reference = reference_verdicts(&snapshot, &x);

    for threads in [1usize, 2, 7] {
        let runtime = Runtime::new(threads);
        let registry = Arc::new(ModelRegistry::new(snapshot.clone()));

        // One submission carrying all rows.
        let config = ServeConfig::builder()
            .max_batch(64)
            .max_queue_wait(Duration::from_micros(200))
            .build()
            .expect("valid config");
        let batcher = MicroBatcher::start(&config, Arc::clone(&registry), runtime);
        let batch = batcher
            .submit(
                common::flatten_rows(&x, 0, ROWS),
                ROWS,
                dims,
                OodStrategy::Msp,
            )
            .expect("batch submit");

        // The same rows submitted one at a time.
        let singles: Vec<ScoredRow> = (0..ROWS)
            .map(|r| {
                batcher
                    .submit(x.row(r).to_vec(), 1, dims, OodStrategy::Msp)
                    .expect("single submit")[0]
            })
            .collect();

        for (r, ((b, s), (ref_score, ref_class))) in
            batch.iter().zip(&singles).zip(&reference).enumerate()
        {
            assert_eq!(
                b.score.to_bits(),
                ref_score.to_bits(),
                "threads={threads} row={r}: batched score differs from reference"
            );
            assert_eq!(
                s.score.to_bits(),
                ref_score.to_bits(),
                "threads={threads} row={r}: single score differs from reference"
            );
            assert_eq!(
                b.class, *ref_class,
                "threads={threads} row={r}: batched class"
            );
            assert_eq!(
                s.class, *ref_class,
                "threads={threads} row={r}: single class"
            );
        }
    }
}

#[test]
fn concurrent_callers_coalesce_without_changing_results() {
    let _stats = common::stats_lock();
    let (snapshot, x_full) = common::fitted_snapshot(23, "coalesce");
    let dims = x_full.cols();
    let x = targad_linalg::Matrix::from_vec(ROWS, dims, common::flatten_rows(&x_full, 0, ROWS));
    let reference = reference_verdicts(&snapshot, &x);

    let registry = Arc::new(ModelRegistry::new(snapshot.clone()));
    // A wide window so the barrier-released submissions land in one batch.
    let config = ServeConfig::builder()
        .max_batch(ROWS)
        .max_queue_wait(Duration::from_millis(50))
        .build()
        .expect("valid config");
    let batcher = Arc::new(MicroBatcher::start(&config, registry, Runtime::new(2)));

    const CALLERS: usize = 8;
    let per_caller = ROWS / CALLERS;
    let barrier = Arc::new(Barrier::new(CALLERS));
    let handles: Vec<_> = (0..CALLERS)
        .map(|c| {
            let batcher = Arc::clone(&batcher);
            let barrier = Arc::clone(&barrier);
            let x = x.clone();
            std::thread::spawn(move || {
                let lo = c * per_caller;
                barrier.wait();
                let rows = batcher
                    .submit(
                        common::flatten_rows(&x, lo, lo + per_caller),
                        per_caller,
                        dims,
                        OodStrategy::Msp,
                    )
                    .expect("coalesced submit");
                (lo, rows)
            })
        })
        .collect();

    for handle in handles {
        let (lo, rows) = handle.join().expect("caller thread");
        for (offset, row) in rows.iter().enumerate() {
            let (ref_score, ref_class) = reference[lo + offset];
            assert_eq!(
                row.score.to_bits(),
                ref_score.to_bits(),
                "row {}: coalesced score differs from reference",
                lo + offset
            );
            assert_eq!(row.class, ref_class, "row {}: coalesced class", lo + offset);
        }
    }

    let stats = batcher.stats();
    assert_eq!(stats.rows, ROWS as u64);
    assert!(
        stats.max_fill > per_caller as u64,
        "expected coalescing across callers, max fill was {}",
        stats.max_fill
    );
}
