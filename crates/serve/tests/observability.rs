//! End-to-end serve observability: per-tenant Prometheus series on
//! `/metrics`, the JSON mirror on `/metrics.json`, monotone request IDs in
//! `/score` responses, and a structured JSONL access log carrying verdict
//! counts and per-phase trace timings.

mod common;

use std::time::Duration;

use targad_core::EnginePrecision;
use targad_runtime::Runtime;
use targad_serve::{Client, Json, ServeConfig, Server};

fn score_body(x: &targad_linalg::Matrix, n: usize, tenant: Option<&str>) -> String {
    let rows: Vec<String> = (0..n)
        .map(|r| {
            let cells: Vec<String> = x.row(r).iter().map(|v| format!("{v:?}")).collect();
            format!("[{}]", cells.join(", "))
        })
        .collect();
    match tenant {
        Some(t) => format!("{{\"rows\": [{}], \"tenant\": \"{t}\"}}", rows.join(", ")),
        None => format!("{{\"rows\": [{}]}}", rows.join(", ")),
    }
}

/// A scratch directory unique to this test run.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("targad-obs-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn metrics_access_log_and_request_ids_cover_both_tenants() {
    let _stats = common::stats_lock();
    let (default_snap, x) = common::fitted_snapshot(41, "obs-default");
    let (tenant_snap, _) = common::fitted_snapshot(43, "obs-acme");
    let dir = scratch_dir("e2e");
    targad_store::save(
        &tenant_snap.classifier,
        &tenant_snap.thresholds,
        EnginePrecision::F64,
        dir.join("acme.tgsnp"),
    )
    .expect("write tenant snapshot");
    let log_path = dir.join("access.jsonl");

    let config = ServeConfig::builder()
        .max_batch(16)
        .max_queue_wait(Duration::from_micros(300))
        .store_dir(Some(dir.clone()))
        .access_log(Some(log_path.clone()))
        .build()
        .expect("valid config");
    let mut handle = Server::start(config, default_snap, Runtime::new(2)).expect("boot");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Tracing on, so access-log phase timings are real nanoseconds.
    targad_obs::set_enabled(true);

    // Score the default tenant and the faulted-in "acme" tenant; request
    // IDs in the response bodies must be present and strictly increasing.
    let mut last_id = 0u64;
    for round in 0..3 {
        for tenant in [None, Some("acme")] {
            let resp = client
                .request("POST", "/score", &score_body(&x, 2 + round, tenant))
                .expect("score");
            assert_eq!(resp.status, 200, "{}", resp.text());
            let doc = Json::parse(&resp.text()).expect("score body is JSON");
            let id = doc
                .get("request_id")
                .and_then(Json::as_f64)
                .expect("response carries request_id") as u64;
            assert!(
                id > last_id,
                "request IDs must be monotone: got {id} after {last_id}"
            );
            last_id = id;
        }
    }
    // One failing request: wrong dimensionality, logged with status 400.
    let bad = client
        .request("POST", "/score", "{\"rows\": [[1.0, 2.0]]}")
        .expect("bad score");
    assert_eq!(bad.status, 400, "{}", bad.text());

    // /metrics is Prometheus text 0.0.4 with per-tenant series for every
    // tenant that scored traffic.
    let prom = client.request("GET", "/metrics", "").expect("GET /metrics");
    assert_eq!(prom.status, 200);
    let ctype = prom
        .headers
        .iter()
        .find(|(k, _)| k == "content-type")
        .map(|(_, v)| v.as_str())
        .unwrap_or("");
    assert!(
        ctype.starts_with("text/plain; version=0.0.4"),
        "Prometheus content type, got {ctype:?}"
    );
    let text = prom.text();
    for needle in [
        "# TYPE targad_serve_requests_total counter",
        "targad_serve_tenant_requests_total{tenant=\"default\"}",
        "targad_serve_tenant_requests_total{tenant=\"acme\"}",
        "targad_serve_tenant_rows_total{tenant=\"acme\"}",
        "targad_serve_queue_wait_ns_bucket{le=",
    ] {
        assert!(
            text.contains(needle),
            "/metrics missing {needle:?}:\n{text}"
        );
    }
    // Every exposition line is a comment or `name{labels}? value`.
    for line in text
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
    {
        let (_, value) = line.rsplit_once(' ').expect("sample has a value");
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable sample value in {line:?}"
        );
    }

    // The JSON mirror still parses.
    let json = client
        .request("GET", "/metrics.json", "")
        .expect("GET /metrics.json");
    assert_eq!(json.status, 200);
    Json::parse(&json.text()).expect("/metrics.json is valid JSON");

    // Unknown routes and methods keep their HTTP semantics.
    assert_eq!(client.request("POST", "/metrics", "").unwrap().status, 404);
    assert_eq!(client.request("PUT", "/score", "{}").unwrap().status, 405);

    targad_obs::set_enabled(false);
    handle.shutdown();

    // The access log is one JSON document per line with the stable schema:
    // request id, tenant, verdict counts, per-phase nanos, wall time.
    let log = std::fs::read_to_string(&log_path).expect("read access log");
    let lines: Vec<&str> = log.lines().collect();
    assert_eq!(lines.len(), 7, "6 scores + 1 rejected request:\n{log}");
    let mut acme_rows = 0u64;
    for line in &lines {
        let doc = Json::parse(line).expect("access-log line is JSON");
        for key in [
            "request_id",
            "rows",
            "status",
            "queue_wait_ns",
            "coalesce_ns",
            "engine_ns",
            "serialize_ns",
            "request_ns",
        ] {
            assert!(
                doc.get(key).and_then(Json::as_f64).is_some(),
                "access-log line missing numeric {key:?}: {line}"
            );
        }
        let tenant = doc
            .get("tenant")
            .and_then(Json::as_str)
            .expect("line names its tenant");
        let verdicts = doc.get("verdicts").expect("verdict counts");
        let total: f64 = ["normal", "target", "non_target"]
            .iter()
            .map(|k| verdicts.get(k).and_then(Json::as_f64).unwrap())
            .sum();
        let status = doc.get("status").and_then(Json::as_f64).unwrap() as u16;
        let rows = doc.get("rows").and_then(Json::as_f64).unwrap() as u64;
        if status == 200 {
            assert_eq!(total as u64, rows, "verdict counts tally the rows: {line}");
            assert!(
                doc.get("engine_ns").and_then(Json::as_f64).unwrap() > 0.0,
                "traced request has engine time: {line}"
            );
            if tenant == "acme" {
                acme_rows += rows;
            }
        } else {
            assert_eq!(status, 400, "the one failure is the bad-dims request");
            assert_eq!(total, 0.0, "failed requests score nothing");
        }
    }
    assert_eq!(acme_rows, 2 + 3 + 4, "acme's rows all reached the log");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn loopback_gate_admits_local_scrapes() {
    let _stats = common::stats_lock();
    let (snapshot, x) = common::fitted_snapshot(47, "obs-loopback");
    let config = ServeConfig::builder()
        .metrics_loopback_only(true)
        .build()
        .expect("valid config");
    let mut handle = Server::start(config, snapshot, Runtime::new(2)).expect("boot");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // The test client connects over 127.0.0.1, so the loopback-only gate
    // must admit it on both exposition routes — and /score needs no auth.
    let resp = client
        .request("POST", "/score", &score_body(&x, 1, None))
        .expect("score");
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert_eq!(client.request("GET", "/metrics", "").unwrap().status, 200);
    assert_eq!(
        client.request("GET", "/metrics.json", "").unwrap().status,
        200
    );
    handle.shutdown();
}
