//! Multi-tenant serving end to end: tenant-keyed `/score` routing with
//! `store_dir` fault-in, the admin load/evict/list routes, the hard LRU
//! budget invariant, and eviction under in-flight traffic.

mod common;

use std::sync::Arc;
use std::time::Duration;

use targad_core::{EnginePrecision, OodStrategy};
use targad_runtime::Runtime;
use targad_serve::{Client, Json, MicroBatcher, ModelRegistry, ServeConfig, Server};

fn score_body(x: &targad_linalg::Matrix, n: usize, tenant: Option<&str>) -> String {
    let rows: Vec<String> = (0..n)
        .map(|r| {
            let cells: Vec<String> = x.row(r).iter().map(|v| format!("{v:?}")).collect();
            format!("[{}]", cells.join(", "))
        })
        .collect();
    match tenant {
        Some(t) => format!("{{\"rows\": [{}], \"tenant\": \"{t}\"}}", rows.join(", ")),
        None => format!("{{\"rows\": [{}]}}", rows.join(", ")),
    }
}

/// A scratch directory of `<tenant>.tgsnp` v3 snapshots.
fn store_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("targad-tenants-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create store dir");
    dir
}

#[test]
fn tenants_fault_in_score_and_evict_over_http() {
    let (default_snap, x) = common::fitted_snapshot(31, "default-model");
    let (tenant_snap, _) = common::fitted_snapshot(77, "tenant-model");
    let dir = store_dir("e2e");
    targad_store::save(
        &tenant_snap.classifier,
        &tenant_snap.thresholds,
        EnginePrecision::F64,
        dir.join("acme.tgsnp"),
    )
    .expect("write tenant snapshot");

    let config = ServeConfig::builder()
        .max_batch(16)
        .max_queue_wait(Duration::from_micros(300))
        .store_dir(Some(dir.clone()))
        .build()
        .expect("valid config");
    let mut handle = Server::start(config, default_snap.clone(), Runtime::new(2)).expect("boot");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Default-tenant scoring is unchanged; the response names the tenant.
    let resp = client
        .request("POST", "/score", &score_body(&x, 2, None))
        .expect("default score");
    assert_eq!(resp.status, 200, "{}", resp.text());
    let doc = Json::parse(&resp.text()).expect("json");
    assert_eq!(doc.get("tenant").and_then(Json::as_str), Some("default"));

    // A named tenant faults in from the store_dir on first use and scores
    // bit-identically to the in-process reference on its own model.
    let tau = common::tau_of(&tenant_snap, OodStrategy::Msp);
    let reference = tenant_snap.classifier.verdicts(&x, OodStrategy::Msp, tau);
    let resp = client
        .request("POST", "/score", &score_body(&x, 3, Some("acme")))
        .expect("tenant score");
    assert_eq!(resp.status, 200, "{}", resp.text());
    let doc = Json::parse(&resp.text()).expect("json");
    assert_eq!(doc.get("tenant").and_then(Json::as_str), Some("acme"));
    let verdicts = doc
        .get("verdicts")
        .and_then(Json::as_arr)
        .expect("verdicts");
    for (r, v) in verdicts.iter().enumerate() {
        assert_eq!(
            v.get("score").and_then(Json::as_f64),
            Some(reference.verdict(r).score),
            "row {r}: tenant must score on its own model"
        );
    }

    // Unknown tenant → 404; traversal-shaped names → 400.
    let resp = client
        .request("POST", "/score", &score_body(&x, 1, Some("ghost")))
        .expect("unknown tenant");
    assert_eq!(resp.status, 404, "{}", resp.text());
    let resp = client
        .request("POST", "/score", &score_body(&x, 1, Some("..%2Fetc")))
        .expect("bad tenant name");
    assert_eq!(resp.status, 400, "{}", resp.text());

    // The admin listing shows the faulted-in tenant beside the default.
    let resp = client.request("GET", "/admin/tenants", "").expect("list");
    assert_eq!(resp.status, 200, "{}", resp.text());
    let doc = Json::parse(&resp.text()).expect("json");
    let tenants = doc.get("tenants").and_then(Json::as_arr).expect("tenants");
    let names: Vec<&str> = tenants
        .iter()
        .filter_map(|t| t.get("tenant").and_then(Json::as_str))
        .collect();
    assert_eq!(names, vec!["default", "acme"]);

    // /admin/load replaces the tenant's model explicitly.
    let resp = client
        .request(
            "POST",
            "/admin/load",
            &format!(
                "{{\"tenant\": \"acme\", \"path\": \"{}\", \"tag\": \"acme-v2\"}}",
                targad_serve::json::escape(&dir.join("acme.tgsnp").display().to_string())
            ),
        )
        .expect("admin load");
    assert_eq!(resp.status, 200, "{}", resp.text());

    // Evict, then the next score faults it back in.
    let resp = client
        .request("POST", "/admin/evict", "{\"tenant\": \"acme\"}")
        .expect("evict");
    assert_eq!(resp.status, 200, "{}", resp.text());
    let resp = client
        .request("POST", "/admin/evict", "{\"tenant\": \"acme\"}")
        .expect("evict again");
    assert_eq!(resp.status, 404, "already evicted: {}", resp.text());
    let resp = client
        .request("POST", "/admin/evict", "{\"tenant\": \"default\"}")
        .expect("evict default");
    assert_eq!(resp.status, 400, "default is pinned: {}", resp.text());
    let resp = client
        .request("POST", "/score", &score_body(&x, 1, Some("acme")))
        .expect("refault");
    assert_eq!(resp.status, 200, "{}", resp.text());

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lru_budget_holds_under_churn_and_never_tears_in_flight_batches() {
    let (default_snap, x) = common::fitted_snapshot(13, "default-model");
    let dir = store_dir("churn");
    const TENANTS: usize = 8;
    for t in 0..TENANTS {
        let (snap, _) = common::fitted_snapshot(100 + t as u64, "churn-model");
        targad_store::save(
            &snap.classifier,
            &snap.thresholds,
            EnginePrecision::F64,
            dir.join(format!("t{t}.tgsnp")),
        )
        .expect("write tenant snapshot");
    }
    let unit = default_snap.resident_cost();
    // Room for the default plus about three tenants: faulting all eight
    // in forces steady LRU churn.
    let budget = unit * 4 + unit / 2;

    let config = ServeConfig::builder()
        .max_batch(32)
        .max_queue_wait(Duration::from_micros(200))
        .model_budget_bytes(budget)
        .store_dir(Some(dir.clone()))
        .build()
        .expect("valid config");
    let registry = Arc::new(
        ModelRegistry::with_options(
            default_snap,
            EnginePrecision::F64,
            budget,
            Some(dir.clone()),
        )
        .expect("default fits"),
    );
    let batcher = Arc::new(MicroBatcher::start(
        &config,
        Arc::clone(&registry),
        Runtime::new(2),
    ));

    let dims = x.cols();
    let workers: Vec<_> = (0..4)
        .map(|w| {
            let batcher = Arc::clone(&batcher);
            let registry = Arc::clone(&registry);
            let x = x.clone();
            std::thread::spawn(move || {
                let mut scored = 0u64;
                for i in 0..60 {
                    let tenant = format!("t{}", (w * 17 + i * 5) % TENANTS);
                    let rows = batcher
                        .submit_for(
                            Some(&tenant),
                            common::flatten_rows(&x, 0, 2),
                            2,
                            dims,
                            OodStrategy::Msp,
                        )
                        .expect("tenant scoring under churn must not fail");
                    assert_eq!(rows.len(), 2);
                    assert!(rows.iter().all(|r| r.score.is_finite()));
                    scored += 2;
                    // The hard invariant, observed mid-churn.
                    assert!(
                        registry.resident_bytes() <= budget,
                        "resident bytes exceeded the budget"
                    );
                }
                scored
            })
        })
        .collect();

    // Concurrent admin churn: keep evicting a rotating tenant while the
    // scorers run. In-flight batches own their snapshot Arc, so this can
    // never tear them.
    let evictor = {
        let registry = Arc::clone(&registry);
        std::thread::spawn(move || {
            for i in 0..120 {
                registry.evict_tenant(&format!("t{}", i % TENANTS));
                std::thread::sleep(Duration::from_micros(300));
            }
        })
    };

    let total: u64 = workers.into_iter().map(|h| h.join().expect("worker")).sum();
    evictor.join().expect("evictor");
    assert_eq!(total, 4 * 60 * 2, "zero lost requests");
    assert!(registry.resident_bytes() <= budget);
    assert!(
        registry.tenants().len() <= TENANTS + 1,
        "listing stays bounded"
    );

    batcher.shutdown();
    assert_eq!(batcher.depth(), 0);
    std::fs::remove_dir_all(&dir).ok();
}
