//! The two physical read paths: `mmap` (zero-copy) and buffered
//! (single read into an aligned buffer). Both feed the same validated
//! word view to [`crate::read::from_words`], so scores are bit-identical
//! either way.

use std::fs::File;
use std::io::Read;
use std::path::Path;

use targad_linalg::SharedBuffer;
use targad_obs::metrics::{STORE_BUFFERED_LOADS, STORE_MMAP_LOADS};

use crate::read::{from_words, LoadedModel};
use crate::StoreError;

/// How [`load_with`] turns file bytes into the word buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LoadMode {
    /// `mmap` when the platform supports it (unix, little-endian),
    /// buffered otherwise — the production default.
    #[default]
    Auto,
    /// Require the zero-copy `mmap` path; error where unsupported.
    Mmap,
    /// Force the buffered fallback (also the cross-endian path: words
    /// are decoded with `from_le_bytes`, not reinterpreted).
    Buffered,
}

/// Whether this build can serve the zero-copy `mmap` path.
pub const fn mmap_supported() -> bool {
    cfg!(all(unix, target_endian = "little"))
}

#[cfg(all(unix, target_endian = "little"))]
mod mapping {
    use std::ffi::c_void;
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    // std already links libc; declaring the two calls directly keeps the
    // crate dependency-free.
    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    /// A read-only private mapping of a whole snapshot file, viewed as
    /// `f64` words. Pages are page-aligned, so the f64 view is aligned;
    /// the mapping is immutable (`PROT_READ`) and private, so later
    /// file writes cannot race the borrowed weights.
    pub struct Mapping {
        ptr: *mut c_void,
        bytes: usize,
    }

    // The mapping is read-only for its whole lifetime.
    unsafe impl Send for Mapping {}
    unsafe impl Sync for Mapping {}

    impl Mapping {
        /// Maps the first `bytes` (a multiple of 8, non-zero) of `file`.
        pub fn of(file: &File, bytes: usize) -> io::Result<Self> {
            debug_assert!(bytes > 0 && bytes % 8 == 0);
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    bytes,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Self { ptr, bytes })
        }
    }

    impl targad_linalg::F64Buffer for Mapping {
        fn as_f64s(&self) -> &[f64] {
            // Safe: the mapping is page-aligned (so f64-aligned), spans
            // `bytes` readable bytes for the life of `self`, and every
            // f64 bit pattern is a valid value.
            unsafe { std::slice::from_raw_parts(self.ptr as *const f64, self.bytes / 8) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            unsafe {
                munmap(self.ptr, self.bytes);
            }
        }
    }
}

fn format_err(msg: String) -> StoreError {
    StoreError::Format(msg)
}

/// The file length if it is a plausible v3 body (non-empty, whole words).
fn checked_len(file: &File) -> Result<usize, StoreError> {
    let bytes = file.metadata().map_err(StoreError::Io)?.len();
    let bytes = usize::try_from(bytes)
        .map_err(|_| format_err(format!("file of {bytes} bytes exceeds address space")))?;
    if bytes == 0 || bytes % 8 != 0 {
        return Err(format_err(format!(
            "file length {bytes} is not a non-zero multiple of 8"
        )));
    }
    Ok(bytes)
}

/// Loads a v3 snapshot through the zero-copy mapping.
#[cfg(all(unix, target_endian = "little"))]
fn load_mmap(path: &Path) -> Result<LoadedModel, StoreError> {
    let file = File::open(path).map_err(StoreError::Io)?;
    let bytes = checked_len(&file)?;
    let map = mapping::Mapping::of(&file, bytes).map_err(StoreError::Io)?;
    let model = from_words(SharedBuffer::new(map))?;
    STORE_MMAP_LOADS.inc_always();
    Ok(model)
}

#[cfg(not(all(unix, target_endian = "little")))]
fn load_mmap(_path: &Path) -> Result<LoadedModel, StoreError> {
    Err(format_err(
        "mmap load path unavailable on this platform (use LoadMode::Buffered)".into(),
    ))
}

/// Loads a v3 snapshot through the buffered fallback: one `read` of the
/// whole file, decoded word-by-word into an (8-aligned) `Vec<f64>`.
fn load_buffered(path: &Path) -> Result<LoadedModel, StoreError> {
    let mut file = File::open(path).map_err(StoreError::Io)?;
    let bytes = checked_len(&file)?;
    let mut raw = Vec::with_capacity(bytes);
    file.read_to_end(&mut raw).map_err(StoreError::Io)?;
    if raw.len() != bytes || raw.len() % 8 != 0 {
        return Err(format_err(format!(
            "file changed while loading: read {} of {bytes} expected bytes",
            raw.len()
        )));
    }
    let words: Vec<f64> = raw
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect();
    let model = from_words(SharedBuffer::from_vec(words))?;
    STORE_BUFFERED_LOADS.inc_always();
    Ok(model)
}

/// Loads a v3 snapshot with an explicit path choice.
///
/// # Errors
/// [`StoreError::Io`] on filesystem failures, [`StoreError::Format`] on
/// anything the validator rejects.
pub fn load_with(path: impl AsRef<Path>, mode: LoadMode) -> Result<LoadedModel, StoreError> {
    let path = path.as_ref();
    match mode {
        LoadMode::Mmap => load_mmap(path),
        LoadMode::Buffered => load_buffered(path),
        LoadMode::Auto => {
            if mmap_supported() {
                load_mmap(path)
            } else {
                load_buffered(path)
            }
        }
    }
}

/// Loads a v3 snapshot ([`LoadMode::Auto`]: `mmap` where supported).
///
/// # Errors
/// See [`load_with`].
pub fn load(path: impl AsRef<Path>) -> Result<LoadedModel, StoreError> {
    load_with(path, LoadMode::Auto)
}
