//! The v3 binary snapshot format: constants, word-level accessors, header
//! validation, and the content checksum.
//!
//! A v3 file is a sequence of little-endian 8-byte words — every field,
//! section offset, and the total length are multiples of 8 bytes, so the
//! whole file can be viewed as one `[f64]` slice (the form `mmap` hands
//! back) and parsed without any byte-level reassembly:
//!
//! ```text
//! word  0        magic "TGADSNP3"
//! word  1        lo u32: format version (3) · hi u32: flags (bit 0 = f32 hint)
//! word  2        m  (target anomaly classes)
//! word  3        k  (hidden normal groups)
//! word  4        lo u32: tau mask (bit 0 msp, 1 es, 2 ed) · hi u32: n_dims
//! words 5..8     taus: msp, es, ed (f64; 0.0 when the mask bit is clear)
//! words 8..      dims: n_dims × u64            ([in, h1, …, m + k])
//! then           section table: 2·(n_dims−1) entries × 4 words
//!                    rows · cols · byte offset · byte length
//! then           weight sections, each at a 64-byte-aligned offset,
//!                row-major f64, order w1, b1, w2, b2, …
//! last word      checksum of every preceding word ([`checksum64`])
//! ```
//!
//! Sections are 64-byte aligned so a mapped weight matrix starts on a
//! cache-line (and, transitively, f64) boundary; alignment gaps are
//! zero-filled and covered by the checksum. The header is validated
//! *exhaustively* before any section is dereferenced — shape/dims
//! agreement, in-bounds offsets, alignment, monotone non-overlapping
//! layout, checksum — so the zero-copy read path can never read out of
//! bounds, no matter how the file was corrupted.

use crate::StoreError;

/// `b"TGADSNP3"` as the little-endian word 0.
pub const MAGIC: u64 = u64::from_le_bytes(*b"TGADSNP3");
/// Format version carried in word 1's low half.
pub const VERSION: u32 = 3;
/// Flags bit 0: the model was saved for f32 (SIMD) serving — warm the
/// f32 plan on admit.
pub const FLAG_F32_HINT: u32 = 1;
/// Weight sections start on multiples of this (bytes).
pub const SECTION_ALIGN: usize = 64;
/// Words before the dims vector: magic, version/flags, m, k,
/// mask/n_dims, three taus.
pub const HEADER_WORDS: usize = 8;
/// Words per section-table entry: rows, cols, byte offset, byte length.
pub const SECTION_WORDS: usize = 4;
/// Sanity cap on `n_dims`: the paper's networks are ≤ 5 layers; 64 is
/// far above anything real and keeps header arithmetic trivially
/// overflow-free.
pub const MAX_DIMS: usize = 64;

/// The FNV-1a-64 offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a-64 prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The v3 content checksum: four interleaved word-wise FNV-1a-64 lanes,
/// folded into one digest together with the word count.
///
/// Lane `j` absorbs words `j, j+4, j+8, …` with the FNV-1a step
/// `h = (h ^ word) * prime`; the digest FNV-folds the length and the
/// four lane states. A plain byte-wise FNV is a single dependency chain
/// of one multiply per byte — ~12 ms for a 10 MB model, dwarfing the
/// `mmap` itself — while four word lanes run at the multiplier's
/// throughput instead of its latency (~25× faster), keeping "validate
/// everything before any weight dereference" affordable on the cold
/// path.
///
/// Detection: every step is a bijection of the lane state for a fixed
/// input word, and `h ^ w` is injective in `w` for a fixed state — so
/// any single corrupted word (hence any single corrupted byte) changes
/// its lane's final state, and the fold is likewise injective per lane.
/// Single-byte corruption is therefore *always* detected, same theorem
/// as the classic byte-serial form.
pub fn checksum64(words: &[f64]) -> u64 {
    let mut lanes: [u64; 4] = [
        FNV_OFFSET,
        FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15,
        FNV_OFFSET ^ 0xc2b2_ae3d_27d4_eb4f,
        FNV_OFFSET ^ 0x1656_67b1_9e37_79f9,
    ];
    let mut chunks = words.chunks_exact(4);
    for c in &mut chunks {
        lanes[0] = (lanes[0] ^ c[0].to_bits()).wrapping_mul(FNV_PRIME);
        lanes[1] = (lanes[1] ^ c[1].to_bits()).wrapping_mul(FNV_PRIME);
        lanes[2] = (lanes[2] ^ c[2].to_bits()).wrapping_mul(FNV_PRIME);
        lanes[3] = (lanes[3] ^ c[3].to_bits()).wrapping_mul(FNV_PRIME);
    }
    for (j, w) in chunks.remainder().iter().enumerate() {
        lanes[j] = (lanes[j] ^ w.to_bits()).wrapping_mul(FNV_PRIME);
    }
    let mut h = (FNV_OFFSET ^ words.len() as u64).wrapping_mul(FNV_PRIME);
    for lane in lanes {
        h = (h ^ lane).wrapping_mul(FNV_PRIME);
    }
    h
}

/// The little-endian u64 stored at word `i`.
///
/// Both load paths preserve file bytes exactly (`mmap` maps them;
/// the buffered path decodes with `f64::from_le_bytes`), so
/// `to_bits()` recovers the on-disk word on any host.
#[inline]
pub fn word_u64(words: &[f64], i: usize) -> u64 {
    words[i].to_bits()
}

/// The `(lo, hi)` u32 pair packed in word `i`.
#[inline]
pub fn word_u32x2(words: &[f64], i: usize) -> (u32, u32) {
    let w = word_u64(words, i);
    (w as u32, (w >> 32) as u32)
}

/// One validated weight section: shape plus its in-file window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Section {
    /// Matrix rows.
    pub rows: usize,
    /// Matrix columns.
    pub cols: usize,
    /// Byte offset of the section start (64-aligned).
    pub byte_offset: usize,
    /// Section length in bytes (`rows * cols * 8`).
    pub byte_len: usize,
}

impl Section {
    /// The section window in f64-word units.
    pub fn word_range(&self) -> (usize, usize) {
        (self.byte_offset / 8, (self.byte_offset + self.byte_len) / 8)
    }
}

/// A fully validated v3 header: every field checked, every section known
/// to be in bounds, aligned, and consistent with `dims`.
#[derive(Clone, Debug)]
pub struct SnapshotInfo {
    /// Target anomaly classes.
    pub m: usize,
    /// Hidden normal groups.
    pub k: usize,
    /// `true` when the snapshot carries the f32 serving hint.
    pub f32_hint: bool,
    /// Layer dimensions `[in, h1, …, m + k]`.
    pub dims: Vec<usize>,
    /// Per-strategy thresholds in `(msp, es, ed)` order, `None` where the
    /// tau mask bit is clear.
    pub taus: [Option<f64>; 3],
    /// Weight sections in `w1, b1, w2, b2, …` order.
    pub sections: Vec<Section>,
}

fn bad(msg: impl Into<String>) -> StoreError {
    StoreError::Format(msg.into())
}

/// Checked usize conversion for header fields.
fn idx(v: u64, what: &str) -> Result<usize, StoreError> {
    usize::try_from(v).map_err(|_| bad(format!("{what} {v} does not fit in usize")))
}

/// Validates a whole v3 file (as little-endian words) and returns its
/// parsed header. After this returns `Ok`, every `Section` window is
/// guaranteed to lie inside `words` — dereferencing it cannot read out
/// of bounds.
pub fn validate(words: &[f64]) -> Result<SnapshotInfo, StoreError> {
    // Smallest possible file: fixed header + 2 dims + 2 sections of the
    // table + 2 one-element sections is already bigger than this; the
    // bound just guards the fixed-header reads below.
    if words.len() < HEADER_WORDS + 1 {
        return Err(bad(format!(
            "file too short: {} words, need at least {}",
            words.len(),
            HEADER_WORDS + 1
        )));
    }
    if word_u64(words, 0) != MAGIC {
        return Err(bad(format!(
            "bad magic {:#018x}, expected \"TGADSNP3\"",
            word_u64(words, 0)
        )));
    }
    let (version, flags) = word_u32x2(words, 1);
    if version != VERSION {
        return Err(bad(format!(
            "unsupported version {version}, expected {VERSION}"
        )));
    }
    if flags & !FLAG_F32_HINT != 0 {
        return Err(bad(format!(
            "unknown flag bits {:#x}",
            flags & !FLAG_F32_HINT
        )));
    }

    // Checksum first: everything after this works on trusted words.
    let stored = word_u64(words, words.len() - 1);
    let computed = checksum64(&words[..words.len() - 1]);
    if stored != computed {
        return Err(bad(format!(
            "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
        )));
    }

    let m = idx(word_u64(words, 2), "m")?;
    let k = idx(word_u64(words, 3), "k")?;
    let (tau_mask, n_dims) = word_u32x2(words, 4);
    if tau_mask >= 8 {
        return Err(bad(format!("bad tau mask {tau_mask:#x}")));
    }
    let n_dims = n_dims as usize;
    if !(2..=MAX_DIMS).contains(&n_dims) {
        return Err(bad(format!("n_dims {n_dims} outside [2, {MAX_DIMS}]")));
    }
    let taus: [Option<f64>; 3] =
        std::array::from_fn(|i| (tau_mask >> i & 1 == 1).then(|| words[5 + i]));

    let n_sections = 2 * (n_dims - 1);
    let table_start = HEADER_WORDS + n_dims;
    let header_words = table_start + n_sections * SECTION_WORDS;
    // Everything up to the first section, plus the trailing checksum.
    if words.len() < header_words + 1 {
        return Err(bad(format!(
            "file too short for {n_dims} dims: {} words, header alone needs {}",
            words.len(),
            header_words + 1
        )));
    }

    let dims: Vec<usize> = (0..n_dims)
        .map(|i| idx(word_u64(words, HEADER_WORDS + i), "dim"))
        .collect::<Result<_, _>>()?;
    if dims.contains(&0) {
        return Err(bad(format!("zero layer dimension in {dims:?}")));
    }
    let out = *dims.last().expect("n_dims >= 2");
    if m.checked_add(k) != Some(out) {
        return Err(bad(format!(
            "m + k = {m} + {k} does not match output dim {out}"
        )));
    }

    let body_end_bytes = (words.len() - 1) * 8; // checksum word excluded
    let mut sections = Vec::with_capacity(n_sections);
    let mut prev_end = header_words * 8;
    for s in 0..n_sections {
        let e = table_start + s * SECTION_WORDS;
        let rows = idx(word_u64(words, e), "rows")?;
        let cols = idx(word_u64(words, e + 1), "cols")?;
        let byte_offset = idx(word_u64(words, e + 2), "offset")?;
        let byte_len = idx(word_u64(words, e + 3), "length")?;

        // Shape must match the declared architecture: section 2i is
        // layer i's weights (dims[i] × dims[i+1]), 2i+1 its bias row.
        let layer = s / 2;
        let expect = if s % 2 == 0 {
            (dims[layer], dims[layer + 1])
        } else {
            (1, dims[layer + 1])
        };
        if (rows, cols) != expect {
            return Err(bad(format!(
                "section {s}: shape {rows}x{cols} does not match dims {expect:?}"
            )));
        }
        let words_needed = rows
            .checked_mul(cols)
            .and_then(|n| n.checked_mul(8))
            .ok_or_else(|| bad(format!("section {s}: {rows}x{cols} overflows")))?;
        if byte_len != words_needed {
            return Err(bad(format!(
                "section {s}: length {byte_len} lies about shape {rows}x{cols} ({words_needed} bytes)"
            )));
        }
        if byte_offset % SECTION_ALIGN != 0 {
            return Err(bad(format!(
                "section {s}: offset {byte_offset} not {SECTION_ALIGN}-byte aligned"
            )));
        }
        if byte_offset < prev_end {
            return Err(bad(format!(
                "section {s}: offset {byte_offset} overlaps previous content ending at {prev_end}"
            )));
        }
        let end = byte_offset
            .checked_add(byte_len)
            .ok_or_else(|| bad(format!("section {s}: window overflows")))?;
        if end > body_end_bytes {
            return Err(bad(format!(
                "section {s}: window [{byte_offset}, {end}) exceeds body of {body_end_bytes} bytes"
            )));
        }
        prev_end = end;
        sections.push(Section {
            rows,
            cols,
            byte_offset,
            byte_len,
        });
    }

    Ok(SnapshotInfo {
        m,
        k,
        f32_hint: flags & FLAG_F32_HINT != 0,
        dims,
        taus,
        sections,
    })
}
