//! Binary v3 model snapshots with a zero-copy `mmap` read path.
//!
//! The paper's deployment shape — train once, score ~150 k merchants
//! daily — means a serving fleet holds *many* fitted models and faults
//! them in constantly. The v1/v2 text format (`targad_core::snapshot`)
//! re-parses and re-allocates every weight on load; this crate replaces
//! that on the hot path with a little-endian binary format whose weight
//! sections are laid out 64-byte-aligned exactly as the inference engine
//! consumes them, so a load is: map the file, validate the header and
//! checksum, and hand each weight matrix a *borrowed window* of the
//! mapping ([`targad_linalg::Matrix::from_shared`]) — zero weight-byte
//! copies, and the mapping lives exactly as long as the model does.
//!
//! Entry points:
//! - [`save`] / [`to_bytes`]: serialize a trained classifier (plus its
//!   calibrated `ThresholdCache` and [`EnginePrecision`] hint);
//! - [`load`] / [`load_with`]: restore a [`LoadedModel`] via `mmap`
//!   ([`LoadMode::Auto`]) or the buffered fallback — bit-identical
//!   scores either way;
//! - [`import_v2_str`] / [`export_v2_string`]: convert to and from the
//!   retained text format for interop.
//!
//! The format spec lives in [`format`]; every structural property the
//! zero-copy path relies on (bounds, alignment, shape agreement, the
//! trailing checksum) is validated before any weight word is touched.

mod file;
mod read;
mod write;

pub mod format;

use std::io;

pub use file::{load, load_with, mmap_supported, LoadMode};
pub use read::{from_words, LoadedModel};
pub use write::{save, to_bytes};

use targad_core::{snapshot as text_snapshot, EnginePrecision};

/// Why a snapshot could not be written or restored.
#[derive(Debug)]
pub enum StoreError {
    /// The filesystem failed.
    Io(io::Error),
    /// The bytes are not a valid v3 snapshot (first validation failure).
    Format(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            StoreError::Format(msg) => write!(f, "invalid v3 snapshot: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Format(_) => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Converts a v1/v2 *text* snapshot to v3 bytes (default `F64`
/// precision hint — the text format does not carry one).
///
/// # Errors
/// [`StoreError::Format`] when the text does not parse.
pub fn import_v2_str(text: &str) -> Result<Vec<u8>, StoreError> {
    let (clf, thresholds) = text_snapshot::from_string_with_thresholds(text)
        .map_err(|e| StoreError::Format(e.to_string()))?;
    Ok(to_bytes(&clf, &thresholds, EnginePrecision::F64))
}

/// Renders a loaded model back to the v2 text format (interop path;
/// bit-exact round trip — the text format prints shortest-round-trip
/// decimals).
pub fn export_v2_string(model: &LoadedModel) -> String {
    text_snapshot::to_string_with_thresholds(&model.classifier, &model.thresholds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use targad_core::{Classifier, OodStrategy, ThresholdCache};
    use targad_linalg::{rng as lrng, SharedBuffer};

    /// A deterministic synthetic classifier with the given architecture
    /// (no training needed for format tests).
    pub(crate) fn synthetic(dims: &[usize], m: usize, seed: u64) -> Classifier {
        let mut rng = lrng::seeded(seed);
        let mut matrices = Vec::new();
        for pair in dims.windows(2) {
            matrices.push(lrng::normal_matrix(&mut rng, pair[0], pair[1], 0.0, 0.5));
            matrices.push(lrng::normal_matrix(&mut rng, 1, pair[1], 0.0, 0.1));
        }
        let k = dims.last().unwrap() - m;
        Classifier::from_parameters(matrices, m, k).expect("consistent synthetic shapes")
    }

    fn words_of(bytes: &[u8]) -> Vec<f64> {
        bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    #[test]
    fn round_trip_in_memory_is_bit_identical() {
        let clf = synthetic(&[7, 16, 5], 2, 11);
        let cache = ThresholdCache::complete(0.125, -3.5, 1.0625e-3);
        let bytes = to_bytes(&clf, &cache, EnginePrecision::F32);
        let model = from_words(SharedBuffer::from_vec(words_of(&bytes))).expect("valid");
        assert_eq!(model.precision, EnginePrecision::F32);
        assert_eq!(model.thresholds, cache);
        assert_eq!(model.classifier.m(), 2);
        assert_eq!(model.classifier.k(), 3);
        assert_eq!(model.classifier.layer_dims(), vec![7, 16, 5]);
        let x = lrng::normal_matrix(&mut lrng::seeded(5), 9, 7, 0.0, 1.0);
        assert_eq!(
            model.classifier.target_scores(&x),
            clf.target_scores(&x),
            "restored scores must be bit-identical"
        );
        // Loaded weights borrow the buffer — no copies were made.
        assert!(model.classifier.has_borrowed_parameters());
        assert_eq!(model.classifier.parameter_bytes(), 0);
    }

    #[test]
    fn partial_thresholds_round_trip() {
        let clf = synthetic(&[4, 3], 1, 3);
        let mut cache = ThresholdCache::default();
        cache.set(OodStrategy::EnergyScore, -7.25);
        let bytes = to_bytes(&clf, &cache, EnginePrecision::F64);
        let model = from_words(SharedBuffer::from_vec(words_of(&bytes))).expect("valid");
        assert_eq!(model.thresholds, cache);
        assert_eq!(model.precision, EnginePrecision::F64);
        // An empty cache round-trips empty.
        let bytes = to_bytes(&clf, &ThresholdCache::default(), EnginePrecision::F64);
        let model = from_words(SharedBuffer::from_vec(words_of(&bytes))).expect("valid");
        assert!(model.thresholds.is_empty());
    }

    #[test]
    fn v2_text_interop_is_bit_identical() {
        let clf = synthetic(&[6, 10, 4], 3, 21);
        let cache = ThresholdCache::complete(0.5, -1.25, 3.0e-4);
        let v3 = to_bytes(&clf, &cache, EnginePrecision::F64);
        let model = from_words(SharedBuffer::from_vec(words_of(&v3))).expect("valid");
        // v3 → v2 text → v3 again preserves every weight bit.
        let text = export_v2_string(&model);
        let v3_again = import_v2_str(&text).expect("text parses");
        let model2 = from_words(SharedBuffer::from_vec(words_of(&v3_again))).expect("valid");
        let x = lrng::normal_matrix(&mut lrng::seeded(8), 5, 6, 0.0, 1.0);
        assert_eq!(model2.classifier.target_scores(&x), clf.target_scores(&x));
        assert_eq!(model2.thresholds, cache);
    }

    #[test]
    fn sections_are_64_byte_aligned() {
        let clf = synthetic(&[5, 9, 3], 1, 2);
        let bytes = to_bytes(&clf, &ThresholdCache::default(), EnginePrecision::F64);
        assert_eq!(bytes.len() % 8, 0);
        let info = format::validate(&words_of(&bytes)).expect("valid");
        for s in &info.sections {
            assert_eq!(s.byte_offset % format::SECTION_ALIGN, 0);
        }
    }
}
