//! Rebuilding a scoring-ready classifier from validated v3 words.

use targad_core::{Classifier, EnginePrecision, OodStrategy, ThresholdCache};
use targad_linalg::{Matrix, SharedBuffer};

use crate::format::{validate, SnapshotInfo};
use crate::StoreError;

/// A model restored from a v3 snapshot: decision-ready classifier,
/// persisted thresholds, and the serving-precision hint the snapshot was
/// saved with.
pub struct LoadedModel {
    /// The scoring-ready classifier. When loaded via `mmap` its weight
    /// matrices *borrow* the mapping (zero weight-byte copies); the
    /// mapping stays alive for as long as the classifier does.
    pub classifier: Classifier,
    /// Thresholds persisted in the snapshot (possibly empty).
    pub thresholds: ThresholdCache,
    /// The precision the snapshot was saved for; `F32` means the saver
    /// intended the f32 plan to be warmed on admit.
    pub precision: EnginePrecision,
}

/// Parses and validates `words` (one little-endian v3 file) and builds
/// the model over *windows of the buffer*: weight matrices borrow
/// `words` instead of copying, so with an `mmap`-backed buffer the
/// classifier scores straight out of the file.
///
/// # Errors
/// [`StoreError::Format`] describing the first validation failure.
pub fn from_words(words: SharedBuffer) -> Result<LoadedModel, StoreError> {
    let info: SnapshotInfo = validate(words.as_f64s())?;
    let matrices: Vec<Matrix> = info
        .sections
        .iter()
        .map(|s| Matrix::from_shared(s.rows, s.cols, words.clone(), s.word_range().0))
        .collect();
    let classifier =
        Classifier::from_parameters(matrices, info.m, info.k).map_err(StoreError::Format)?;
    let mut thresholds = ThresholdCache::default();
    for (i, strategy) in OodStrategy::all().into_iter().enumerate() {
        if let Some(tau) = info.taus[i] {
            thresholds.set(strategy, tau);
        }
    }
    Ok(LoadedModel {
        classifier,
        thresholds,
        precision: if info.f32_hint {
            EnginePrecision::F32
        } else {
            EnginePrecision::F64
        },
    })
}
