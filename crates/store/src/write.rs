//! Serializing a trained classifier to the v3 binary format.

use std::io;
use std::path::Path;

use targad_core::{Classifier, EnginePrecision, OodStrategy, ThresholdCache};

use crate::format::{checksum64, FLAG_F32_HINT, HEADER_WORDS, MAGIC, SECTION_ALIGN, VERSION};

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Rounds `n` up to the next multiple of [`SECTION_ALIGN`].
fn align_up(n: usize) -> usize {
    n.div_ceil(SECTION_ALIGN) * SECTION_ALIGN
}

/// Serializes `clf` (plus its calibrated thresholds and the serving
/// precision hint) to v3 bytes — see [`crate::format`] for the layout.
pub fn to_bytes(
    clf: &Classifier,
    thresholds: &ThresholdCache,
    precision: EnginePrecision,
) -> Vec<u8> {
    let dims = clf.layer_dims();
    let matrices = clf.parameter_matrices();
    debug_assert_eq!(matrices.len(), 2 * (dims.len() - 1));

    // Lay out the sections first: each starts at the next 64-byte
    // boundary after the header + dims + section table.
    let table_start = HEADER_WORDS * 8 + dims.len() * 8;
    let header_end = table_start + matrices.len() * 32;
    let mut offsets = Vec::with_capacity(matrices.len());
    let mut cursor = align_up(header_end);
    for m in &matrices {
        offsets.push(cursor);
        cursor += m.len() * 8;
        cursor = align_up(cursor);
    }
    // The last section needs no tail padding beyond word alignment
    // (section lengths are already multiples of 8); the checksum word
    // follows the final section directly, but keeping the uniform
    // align_up keeps every section's *start* 64-aligned, which is what
    // the reader checks. Total = last aligned cursor + checksum word.
    let total = cursor + 8;

    let mut out = Vec::with_capacity(total);
    push_u64(&mut out, MAGIC);
    let flags = match precision {
        EnginePrecision::F64 => 0,
        EnginePrecision::F32 => FLAG_F32_HINT,
    };
    push_u64(&mut out, u64::from(VERSION) | u64::from(flags) << 32);
    push_u64(&mut out, clf.m() as u64);
    push_u64(&mut out, clf.k() as u64);
    let mut mask = 0u32;
    let mut taus = [0.0f64; 3];
    for (i, strategy) in OodStrategy::all().into_iter().enumerate() {
        if let Some(tau) = thresholds.get(strategy) {
            mask |= 1 << i;
            taus[i] = tau;
        }
    }
    push_u64(&mut out, u64::from(mask) | (dims.len() as u64) << 32);
    for tau in taus {
        push_f64(&mut out, tau);
    }
    for d in &dims {
        push_u64(&mut out, *d as u64);
    }
    for (m, offset) in matrices.iter().zip(&offsets) {
        push_u64(&mut out, m.rows() as u64);
        push_u64(&mut out, m.cols() as u64);
        push_u64(&mut out, *offset as u64);
        push_u64(&mut out, (m.len() * 8) as u64);
    }
    for (m, offset) in matrices.iter().zip(&offsets) {
        out.resize(*offset, 0); // zero-fill the alignment gap
        for v in m.as_slice() {
            push_f64(&mut out, *v);
        }
    }
    out.resize(total - 8, 0);

    // Checksum over everything so far. The body length is a multiple of
    // 8 by construction, so the word view is exact.
    let words: Vec<f64> = out
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect();
    push_u64(&mut out, checksum64(&words));
    debug_assert_eq!(out.len(), total);
    out
}

/// Writes `clf` to `path` in the v3 binary format.
///
/// # Errors
/// Propagates filesystem errors.
pub fn save(
    clf: &Classifier,
    thresholds: &ThresholdCache,
    precision: EnginePrecision,
    path: impl AsRef<Path>,
) -> io::Result<()> {
    std::fs::write(path, to_bytes(clf, thresholds, precision))
}
