//! Shared helpers for the store integration tests.

use targad_core::Classifier;
use targad_linalg::rng as lrng;

/// A deterministic synthetic classifier with the given architecture —
/// format tests need realistic shapes, not a trained model.
pub fn synthetic(dims: &[usize], m: usize, seed: u64) -> Classifier {
    let mut rng = lrng::seeded(seed);
    let mut matrices = Vec::new();
    for pair in dims.windows(2) {
        matrices.push(lrng::normal_matrix(&mut rng, pair[0], pair[1], 0.0, 0.5));
        matrices.push(lrng::normal_matrix(&mut rng, 1, pair[1], 0.0, 0.1));
    }
    let k = dims.last().unwrap() - m;
    Classifier::from_parameters(matrices, m, k).expect("consistent synthetic shapes")
}

/// Recomputes and replaces the trailing checksum word so corruption
/// tests exercise the *structural* validators, not just the checksum.
#[allow(dead_code)] // not every test binary uses every fixture
pub fn fix_checksum(bytes: &mut [u8]) {
    assert!(bytes.len() >= 16 && bytes.len() % 8 == 0);
    let words: Vec<f64> = bytes[..bytes.len() - 8]
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let sum = targad_store::format::checksum64(&words);
    let n = bytes.len();
    bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
}

/// A unique temp-file path for this test process.
pub fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("targad_store_{tag}_{}.v3", std::process::id()))
}
