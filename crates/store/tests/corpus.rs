//! Malformed-input corpus: every structural lie a corrupt or hostile v3
//! file can tell must produce a clean `StoreError`, never a panic or an
//! out-of-bounds read. Cases that keep the checksum valid (via
//! `fix_checksum`) prove the *structural* validators fire on their own.

mod common;

use common::{fix_checksum, synthetic, temp_path};
use targad_core::{EnginePrecision, ThresholdCache};
use targad_linalg::SharedBuffer;
use targad_store::{from_words, load_with, to_bytes, LoadMode, StoreError};

fn valid_bytes() -> Vec<u8> {
    let clf = synthetic(&[6, 9, 4], 2, 60);
    to_bytes(
        &clf,
        &ThresholdCache::complete(0.5, -1.0, 0.001),
        EnginePrecision::F64,
    )
}

fn parse(bytes: &[u8]) -> Result<(), String> {
    let words: Vec<f64> = bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    from_words(SharedBuffer::from_vec(words))
        .map(|_| ())
        .map_err(|e| e.to_string())
}

/// Overwrites the little-endian u64 at word index `w`, then re-stamps
/// the checksum so the structural check under test is what fires.
fn poke(bytes: &mut [u8], w: usize, value: u64) {
    bytes[w * 8..w * 8 + 8].copy_from_slice(&value.to_le_bytes());
    fix_checksum(bytes);
}

// Fixed header word indices for the [6, 9, 4] model: 3 dims at words
// 8..11, section table (4 entries x 4 words) at words 11..27.
const W_VERSION: usize = 1;
const W_M: usize = 2;
const W_MASK_DIMS: usize = 4;
const W_DIMS: usize = 8;
const W_TABLE: usize = 11;

#[test]
fn baseline_is_valid() {
    assert!(parse(&valid_bytes()).is_ok());
}

#[test]
fn rejects_truncations_at_every_word() {
    let bytes = valid_bytes();
    // Every whole-word truncation: header cut short, table cut short,
    // weights cut short, checksum cut off.
    for words in 0..bytes.len() / 8 {
        let err = parse(&bytes[..words * 8]).expect_err("truncation must fail");
        assert!(!err.is_empty());
    }
    // Non-word-multiple byte lengths are rejected before parsing.
    let path = temp_path("truncated");
    std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
    assert!(matches!(
        load_with(&path, LoadMode::Buffered),
        Err(StoreError::Format(_))
    ));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn rejects_empty_file() {
    let path = temp_path("empty");
    std::fs::write(&path, b"").unwrap();
    for mode in [LoadMode::Buffered, LoadMode::Auto] {
        assert!(load_with(&path, mode).is_err());
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn rejects_bad_magic() {
    let mut bytes = valid_bytes();
    bytes[..8].copy_from_slice(b"NOTMAGIC");
    fix_checksum(&mut bytes);
    assert!(parse(&bytes).unwrap_err().contains("magic"));
}

#[test]
fn rejects_wrong_version_and_unknown_flags() {
    let mut bytes = valid_bytes();
    poke(&mut bytes, W_VERSION, 4); // version 4, flags 0
    assert!(parse(&bytes).unwrap_err().contains("version"));

    let mut bytes = valid_bytes();
    poke(&mut bytes, W_VERSION, 3 | 0x8000_0000_0000_0000u64); // flag bit 31
    assert!(parse(&bytes).unwrap_err().contains("flag"));
}

#[test]
fn rejects_checksum_mismatch() {
    let mut bytes = valid_bytes();
    let n = bytes.len();
    bytes[n - 1] ^= 0xff;
    assert!(parse(&bytes).unwrap_err().contains("checksum"));
    // A flipped weight byte (checksum left stale) is caught too.
    let mut bytes = valid_bytes();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    assert!(parse(&bytes).unwrap_err().contains("checksum"));
}

#[test]
fn rejects_lying_section_length() {
    // Entry 0's length field claims fewer bytes than its 6x9 shape.
    let mut bytes = valid_bytes();
    poke(&mut bytes, W_TABLE + 3, 8);
    assert!(parse(&bytes).unwrap_err().contains("lies about shape"));
}

#[test]
fn rejects_misaligned_section_offset() {
    let mut bytes = valid_bytes();
    let off_word = W_TABLE + 2;
    let old = u64::from_le_bytes(bytes[off_word * 8..off_word * 8 + 8].try_into().unwrap());
    poke(&mut bytes, off_word, old + 8); // 8-aligned but not 64-aligned
    assert!(parse(&bytes).unwrap_err().contains("aligned"));
}

#[test]
fn rejects_out_of_bounds_section() {
    // Last section's offset pushed past the end of the file (64-aligned
    // so the alignment check cannot mask the bounds check).
    let bytes = valid_bytes();
    let n_words = bytes.len() / 8;
    let mut lied = bytes.clone();
    // 3 dims → 4 sections; the last entry is index 3.
    let last_entry = W_TABLE + 3 * 4;
    poke(
        &mut lied,
        last_entry + 2,
        (n_words as u64) * 8 * 2 / 64 * 64,
    );
    assert!(parse(&lied).unwrap_err().contains("exceeds body"));
}

#[test]
fn rejects_overlapping_sections() {
    // Section 1 given section 0's offset: same window, overlap.
    let mut bytes = valid_bytes();
    let s0_off = u64::from_le_bytes(
        bytes[(W_TABLE + 2) * 8..(W_TABLE + 2) * 8 + 8]
            .try_into()
            .unwrap(),
    );
    poke(&mut bytes, W_TABLE + 4 + 2, s0_off);
    assert!(parse(&bytes).unwrap_err().contains("overlaps"));
}

#[test]
fn rejects_inconsistent_m_k_and_dims() {
    // m bumped: m + k no longer matches the output dim.
    let mut bytes = valid_bytes();
    poke(&mut bytes, W_M, 3);
    assert!(parse(&bytes)
        .unwrap_err()
        .contains("does not match output dim"));

    // A zero layer dimension.
    let mut bytes = valid_bytes();
    poke(&mut bytes, W_DIMS + 1, 0);
    assert!(parse(&bytes).unwrap_err().contains("zero layer dimension"));

    // n_dims beyond the sanity cap.
    let mut bytes = valid_bytes();
    poke(&mut bytes, W_MASK_DIMS, 7 | (1000u64 << 32));
    assert!(parse(&bytes).unwrap_err().contains("n_dims"));

    // A tau mask with undefined bits.
    let mut bytes = valid_bytes();
    poke(&mut bytes, W_MASK_DIMS, 0xff | (3u64 << 32));
    assert!(parse(&bytes).unwrap_err().contains("tau mask"));
}

#[test]
fn rejects_shape_dims_disagreement() {
    // Entry 2 (layer 1 weights) must be 9x4; claim 4x9 with a
    // "consistent" length.
    let mut bytes = valid_bytes();
    let e = W_TABLE + 2 * 4;
    poke(&mut bytes, e, 4);
    poke(&mut bytes, e + 1, 9);
    assert!(parse(&bytes).unwrap_err().contains("does not match dims"));
}

#[test]
fn huge_claimed_shapes_do_not_overflow() {
    // rows × cols × 8 would overflow usize; must error, not wrap into
    // a "valid" tiny window.
    let mut bytes = valid_bytes();
    poke(&mut bytes, W_DIMS, u64::MAX / 2);
    poke(&mut bytes, W_TABLE, u64::MAX / 2); // rows of section 0
    let err = parse(&bytes).unwrap_err();
    assert!(
        err.contains("overflow") || err.contains("does not match") || err.contains("usize"),
        "unexpected error: {err}"
    );
}
