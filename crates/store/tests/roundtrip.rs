//! File round trips across both load paths, bit-identity against the
//! text format, and property tests over random architectures.

mod common;

use common::{fix_checksum, synthetic, temp_path};
use proptest::prelude::*;
use targad_core::{snapshot as text_snapshot, EnginePrecision, ThresholdCache};
use targad_linalg::rng as lrng;
use targad_store::{load_with, mmap_supported, save, LoadMode};

#[test]
fn mmap_and_buffered_loads_are_bit_identical() {
    let clf = synthetic(&[12, 24, 6], 2, 40);
    let cache = ThresholdCache::complete(0.25, -2.0, 5.0e-4);
    let path = temp_path("bitident");
    save(&clf, &cache, EnginePrecision::F64, &path).expect("save");

    let buffered = load_with(&path, LoadMode::Buffered).expect("buffered load");
    let x = lrng::normal_matrix(&mut lrng::seeded(9), 33, 12, 0.0, 1.0);
    let reference = clf.target_scores(&x);
    assert_eq!(buffered.classifier.target_scores(&x), reference);
    assert_eq!(buffered.thresholds, cache);

    if mmap_supported() {
        let mapped = load_with(&path, LoadMode::Mmap).expect("mmap load");
        assert_eq!(mapped.classifier.target_scores(&x), reference);
        assert_eq!(mapped.thresholds, cache);
        assert!(mapped.classifier.has_borrowed_parameters());
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn v3_and_v2_text_loads_score_identically() {
    let clf = synthetic(&[10, 20, 5], 2, 41);
    let cache = ThresholdCache::complete(0.0625, -1.0, 2.0e-3);

    let v3_path = temp_path("vs_text_v3");
    let v2_path = temp_path("vs_text_v2");
    save(&clf, &cache, EnginePrecision::F64, &v3_path).expect("save v3");
    text_snapshot::save_with_thresholds(&clf, &cache, &v2_path).expect("save v2");

    let from_v3 = targad_store::load(&v3_path).expect("v3 load");
    let (from_v2, v2_cache) = text_snapshot::load_with_thresholds(&v2_path).expect("v2 load");

    let x = lrng::normal_matrix(&mut lrng::seeded(10), 50, 10, 0.0, 1.0);
    assert_eq!(
        from_v3.classifier.target_scores(&x),
        from_v2.target_scores(&x),
        "binary and text loads must score bit-identically"
    );
    assert_eq!(from_v3.thresholds, v2_cache);
    let _ = std::fs::remove_file(&v3_path);
    let _ = std::fs::remove_file(&v2_path);
}

proptest! {
    /// Any architecture/threshold combination round-trips bit-exactly
    /// through v3 bytes, and the weights come back borrowed.
    #[test]
    fn random_models_round_trip(
        d_in in 1usize..17,
        d_hidden in 1usize..25,
        n_hidden in 0usize..3,
        m in 1usize..4,
        k in 1usize..6,
        seed in 0u64..1000,
        tau_mask in 0u32..8,
    ) {
        let mut dims = vec![d_in];
        dims.extend(std::iter::repeat_n(d_hidden, n_hidden));
        dims.push(m + k);
        let clf = synthetic(&dims, m, seed.wrapping_add(7));

        let mut cache = ThresholdCache::default();
        for (i, strategy) in targad_core::OodStrategy::all().into_iter().enumerate() {
            if tau_mask >> i & 1 == 1 {
                cache.set(strategy, (i as f64 + 1.5) / 3.0);
            }
        }

        let bytes = targad_store::to_bytes(&clf, &cache, EnginePrecision::F64);
        let words: Vec<f64> = bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let model = targad_store::from_words(targad_linalg::SharedBuffer::from_vec(words))
            .expect("writer output always validates");
        prop_assert_eq!(model.classifier.layer_dims(), dims.clone());
        prop_assert_eq!(&model.thresholds, &cache);
        prop_assert!(model.classifier.has_borrowed_parameters());
        let x = lrng::normal_matrix(&mut lrng::seeded(seed ^ 1), 7, dims[0], 0.0, 1.0);
        prop_assert_eq!(model.classifier.target_scores(&x), clf.target_scores(&x));
    }

    /// Corrupting any single byte of a snapshot is always *detected* —
    /// the loader errors cleanly instead of panicking or reading garbage.
    /// (FNV-1a's state update is a bijection for a fixed input byte, so
    /// two streams differing in one byte can never re-converge.)
    #[test]
    fn any_single_byte_corruption_is_rejected(pos_seed in 0u64..500, delta in 1u32..=255) {
        let delta = delta as u8;
        let clf = synthetic(&[6, 9, 4], 2, 50);
        let mut bytes = targad_store::to_bytes(&clf, &ThresholdCache::default(), EnginePrecision::F64);
        let pos = (pos_seed as usize) % bytes.len();
        bytes[pos] = bytes[pos].wrapping_add(delta);
        let words: Vec<f64> = bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        prop_assert!(
            targad_store::from_words(targad_linalg::SharedBuffer::from_vec(words)).is_err(),
            "byte {pos} changed by {delta} must be rejected"
        );
    }

    /// Structural lies that keep the checksum valid (an attacker or a
    /// buggy writer recomputing it) still never get past validation when
    /// they would make a section escape the file.
    #[test]
    fn lying_offsets_with_valid_checksums_are_rejected(extra in 1u64..1_000_000) {
        let clf = synthetic(&[5, 8, 3], 1, 51);
        let mut bytes = targad_store::to_bytes(&clf, &ThresholdCache::default(), EnginePrecision::F64);
        // Section table entry 0 starts at word 8 + n_dims = 11; its
        // offset field is the third word of the entry.
        let offset_word = (8 + 3 + 2) * 8;
        let old = u64::from_le_bytes(bytes[offset_word..offset_word + 8].try_into().unwrap());
        let lied = (old + extra * 64).to_le_bytes();
        bytes[offset_word..offset_word + 8].copy_from_slice(&lied);
        fix_checksum(&mut bytes);
        let words: Vec<f64> = bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        prop_assert!(
            targad_store::from_words(targad_linalg::SharedBuffer::from_vec(words)).is_err()
        );
    }
}
