//! The zero-copy claim, enforced by a counting allocator: an `mmap` load
//! of a Table II-sized model performs **zero** weight-sized heap
//! allocations, while the buffered and text paths (by design) do not.

mod common;

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use common::{synthetic, temp_path};
use targad_core::{snapshot as text_snapshot, EnginePrecision, ThresholdCache};
use targad_linalg::rng as lrng;
use targad_store::{load_with, mmap_supported, save, LoadMode};

/// Counts allocations at least as large as one weight-matrix row of the
/// test model — small bookkeeping (Vecs of handles, path buffers) passes
/// free, any weight-bytes copy is caught.
const WEIGHT_SIZED: usize = 4096;

struct CountingAlloc;

static LARGE_ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if layout.size() >= WEIGHT_SIZED {
            LARGE_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if new_size >= WEIGHT_SIZED {
            LARGE_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn large_allocs_during(f: impl FnOnce()) -> usize {
    let before = LARGE_ALLOCS.load(Ordering::Relaxed);
    f();
    LARGE_ALLOCS.load(Ordering::Relaxed) - before
}

/// One test function: the counter is process-global, so the comparisons
/// must not run concurrently with each other.
#[test]
fn mmap_load_makes_zero_weight_allocations() {
    // A Table II-sized network: every weight matrix is tens of KiB, far
    // above the counting threshold.
    let dims = [64, 128, 64, 8];
    let clf = synthetic(&dims, 3, 70);
    let cache = ThresholdCache::complete(0.5, -1.0, 0.001);

    let v3 = temp_path("zero_copy_v3");
    let v2 = temp_path("zero_copy_v2");
    save(&clf, &cache, EnginePrecision::F64, &v3).expect("save v3");
    text_snapshot::save_with_thresholds(&clf, &cache, &v2).expect("save v2");

    let x = lrng::normal_matrix(&mut lrng::seeded(3), 16, dims[0], 0.0, 1.0);
    let reference = clf.target_scores(&x);

    // The buffered path allocates the file buffer (as designed).
    let mut loaded = None;
    let buffered = large_allocs_during(|| {
        loaded = Some(load_with(&v3, LoadMode::Buffered).expect("buffered load"));
    });
    assert!(buffered >= 1, "buffered path should read into a buffer");
    assert_eq!(
        loaded.take().unwrap().classifier.target_scores(&x),
        reference
    );

    // The text path re-parses and re-allocates every weight.
    let text_allocs = large_allocs_during(|| {
        let (c, _) = text_snapshot::load_with_thresholds(&v2).expect("text load");
        loaded = Some(targad_store::LoadedModel {
            classifier: c,
            thresholds: cache,
            precision: EnginePrecision::F64,
        });
    });
    assert!(text_allocs >= 1, "text path allocates weights");
    assert_eq!(
        loaded.take().unwrap().classifier.target_scores(&x),
        reference
    );

    // The mmap path: zero weight-sized allocations, bit-identical scores.
    if !mmap_supported() {
        return;
    }
    let mapped_allocs = large_allocs_during(|| {
        loaded = Some(load_with(&v3, LoadMode::Mmap).expect("mmap load"));
    });
    assert_eq!(
        mapped_allocs, 0,
        "mmap load must not copy weight bytes onto the heap"
    );
    let mapped = loaded.take().unwrap();
    assert!(mapped.classifier.has_borrowed_parameters());
    assert_eq!(mapped.classifier.parameter_bytes(), 0);
    assert_eq!(mapped.classifier.target_scores(&x), reference);

    let _ = std::fs::remove_file(&v3);
    let _ = std::fs::remove_file(&v2);
}
