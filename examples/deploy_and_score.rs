//! Train-once / score-forever deployment: persist the trained classifier
//! plus its calibrated thresholds to disk, then serve it from a real
//! scoring service — micro-batched HTTP, three-way verdicts, hot-swap.
//!
//! The paper's SQB deployment scores ~150k merchants per day against a
//! model trained offline; this example shows that full round trip.
//!
//! Run with: `cargo run --release --example deploy_and_score`

use targad::core::snapshot;
use targad::prelude::*;
use targad::serve::{Client, Json};

fn main() {
    // ---- offline training job ------------------------------------------
    let bundle = GeneratorSpec::quick_demo().generate(99);
    let mut model = TargAd::try_new(TargAdConfig::fast()).expect("valid config");
    model.fit(&bundle.train, 99).expect("training succeeds");
    model
        .calibrate_thresholds(&bundle.val.features, &bundle.val.three_way_labels())
        .expect("calibration succeeds");
    let clf = model.classifier().expect("fitted");

    let path = std::env::temp_dir().join("targad_deployed_model.snapshot");
    snapshot::save_with_thresholds(clf, model.thresholds(), &path).expect("persist model");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!(
        "trained model persisted to {} ({bytes} bytes, dims {:?}, m={} k={}, \
         thresholds calibrated for all OOD strategies)",
        path.display(),
        clf.layer_dims(),
        clf.m(),
        clf.k()
    );

    // ---- scoring service (separate process in real life) ----------------
    let (restored, thresholds) = snapshot::load_with_thresholds(&path).expect("reload model");
    assert_eq!(
        restored.target_scores(&bundle.test.features),
        clf.target_scores(&bundle.test.features),
        "snapshot must preserve scores bit-exactly"
    );
    let config = ServeConfig::builder()
        .port(0) // ephemeral port for the example; fix one in production
        .build()
        .expect("valid serve config");
    let mut server = Server::start(
        config,
        ModelSnapshot::new(restored, thresholds, "quick-demo-v1"),
        Runtime::new(2),
    )
    .expect("server boots");
    println!("serving on http://{}", server.addr());

    // Stream the day's instances through the service, a few at a time —
    // concurrent requests would coalesce into shared micro-batches.
    let x = &bundle.test.features;
    let mut client = Client::connect(server.addr()).expect("connect");
    let mut counts = [0usize; 3];
    for chunk in (0..x.rows()).collect::<Vec<_>>().chunks(50) {
        let rows: Vec<String> = chunk
            .iter()
            .map(|&r| {
                let cells: Vec<String> = x.row(r).iter().map(|v| format!("{v:?}")).collect();
                format!("[{}]", cells.join(","))
            })
            .collect();
        let body = format!(
            "{{\"rows\": [{}], \"ood_strategy\": \"ed\"}}",
            rows.join(",")
        );
        let resp = client.request("POST", "/score", &body).expect("score");
        assert_eq!(resp.status, 200, "{}", resp.text());
        let doc = Json::parse(&resp.text()).expect("verdict json");
        for v in doc
            .get("verdicts")
            .and_then(Json::as_arr)
            .expect("verdicts")
        {
            let class = v.get("class").and_then(Json::as_str).expect("class");
            let idx = VerdictClass::all()
                .iter()
                .position(|c| c.name() == class)
                .expect("known class");
            counts[idx] += 1;
        }
    }
    println!(
        "verdicts over {} streamed instances (ED strategy): \
         {} normal, {} target -> analyst queue, {} non-target",
        x.rows(),
        counts[0],
        counts[1],
        counts[2]
    );

    // Nightly retrain lands: hot-swap the served model without dropping
    // in-flight work.
    let body = format!(
        "{{\"path\": \"{}\", \"tag\": \"quick-demo-v2\"}}",
        targad::serve::json::escape(&path.display().to_string())
    );
    let resp = client.request("POST", "/admin/swap", &body).expect("swap");
    assert_eq!(resp.status, 200, "{}", resp.text());
    let generation = Json::parse(&resp.text())
        .expect("swap json")
        .get("generation")
        .and_then(Json::as_f64)
        .expect("generation");
    println!("hot-swapped to generation {generation} with zero dropped requests");

    drop(client);
    server.shutdown();
    let _ = std::fs::remove_file(&path);
}
