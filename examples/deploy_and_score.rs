//! Train-once / score-forever deployment: persist the trained classifier
//! to disk and reload it in a (simulated) scoring service.
//!
//! The paper's SQB deployment scores ~150k merchants per day against a
//! model trained offline; this example shows the snapshot round trip.
//!
//! Run with: `cargo run --release --example deploy_and_score`

use targad::core::snapshot;
use targad::prelude::*;

fn main() {
    // ---- offline training job ------------------------------------------
    let bundle = GeneratorSpec::quick_demo().generate(99);
    let mut model = TargAd::try_new(TargAdConfig::fast()).expect("valid config");
    model.fit(&bundle.train, 99).expect("training succeeds");
    let clf = model.classifier().expect("fitted");

    let path = std::env::temp_dir().join("targad_deployed_model.txt");
    snapshot::save(clf, &path).expect("persist classifier");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!(
        "trained classifier persisted to {} ({bytes} bytes, dims {:?}, m={} k={})",
        path.display(),
        clf.layer_dims(),
        clf.m(),
        clf.k()
    );

    // ---- scoring service (separate process in real life) ----------------
    let restored = snapshot::load(&path).expect("reload classifier");
    let scores = restored.target_scores(&bundle.test.features);
    let original = clf.target_scores(&bundle.test.features);
    assert_eq!(
        scores, original,
        "snapshot must preserve scores bit-exactly"
    );

    let labels = bundle.test.target_labels();
    println!(
        "restored model: target AUPRC {:.3}, AUROC {:.3} on {} streamed instances",
        average_precision(&scores, &labels),
        auroc(&scores, &labels),
        scores.len()
    );

    // Daily triage: everything above a fixed operating threshold goes to
    // the analyst queue.
    let threshold = 0.8;
    let flagged = scores.iter().filter(|&&s| s >= threshold).count();
    let hits = scores
        .iter()
        .zip(&labels)
        .filter(|(&s, &l)| s >= threshold && l)
        .count();
    println!(
        "operating point {threshold}: {flagged} flagged, {hits} true target anomalies \
         (precision {:.0}%)",
        100.0 * hits as f64 / flagged.max(1) as f64
    );
    let _ = std::fs::remove_file(&path);
}
