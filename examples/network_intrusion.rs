//! Network-intrusion monitoring with *novel* low-risk attack types
//! (the paper's Fig. 4a scenario on UNSW-NB15).
//!
//! The SOC team cares about Generic / Backdoor / DoS attacks. Training
//! data only ever contained one low-risk attack family; at test time three
//! new low-risk families appear. A robust detector must keep flagging the
//! high-risk attacks without drowning the queue in the new noise.
//!
//! Run with: `cargo run --release --example network_intrusion`

use targad::baselines::{Detector, DevNet, TrainView};
use targad::prelude::*;

fn main() {
    let scale = 0.02;

    // Scenario A: all four non-target families seen during training.
    let seen = Preset::UnswNb15.spec(scale);

    // Scenario B: only family #3 in training; families 0–2 are novel.
    let mut unseen = Preset::UnswNb15.spec(scale);
    unseen.train_non_target_classes = Some(vec![3]);

    println!(
        "UNSW-NB15-like stream, {} features, 3 high-risk attack families\n",
        seen.dims
    );
    println!("{:<28} {:>14} {:>14}", "", "TargAD AUPRC", "DevNet AUPRC");
    for (name, spec) in [
        ("0 novel low-risk families", seen),
        ("3 novel low-risk families", unseen),
    ] {
        let bundle = spec.generate(11);
        let labels = bundle.test.target_labels();

        let mut config = TargAdConfig::default_tuned();
        config.k = Some(spec.normal_groups);
        let mut targad = TargAd::try_new(config).expect("valid config");
        targad.fit(&bundle.train, 11).expect("training succeeds");
        let ap_targad = average_precision(
            &targad.try_score_dataset(&bundle.test).expect("fitted"),
            &labels,
        );

        let mut devnet = DevNet::default();
        devnet
            .fit(&TrainView::from_dataset(&bundle.train), 11)
            .expect("baseline fit");
        let ap_devnet = average_precision(&devnet.score(&bundle.test.features), &labels);

        println!("{name:<28} {ap_targad:>14.3} {ap_devnet:>14.3}");
    }

    println!(
        "\nTargAD calibrates unseen non-target anomalies toward a uniform prediction\n\
         (outlier exposure, Eq. 6), so novel low-risk families don't become\n\
         high-risk false positives."
    );
}
