//! Payment-platform triage (the paper's SQB scenario, Fig. 1).
//!
//! Millions of merchants; a few dozen high-risk anomalies per day (fraud,
//! gambling recharge) buried among thousands of low-risk ones (click
//! farming, cash out). The analyst team can only verify a handful of
//! cases — precision at the top of the queue is everything.
//!
//! Run with: `cargo run --release --example payment_fraud`

use targad::baselines::{DeepSad, Detector, TrainView};
use targad::data::Truth;
use targad::prelude::*;

fn main() {
    // A scaled-down SQB: 182 merchant features, 2 target classes (fraud,
    // gambling recharge), 2 non-target classes (click farming, cash out),
    // heavy class imbalance.
    let spec = Preset::Sqb.spec(0.01);
    let bundle = spec.generate(42);
    let te = bundle.test.summary();
    println!(
        "daily review queue: {} merchants — {} high-risk, {} low-risk anomalies hidden inside\n",
        bundle.test.len(),
        te.unlabeled_target,
        te.non_target
    );

    let mut config = TargAdConfig::default_tuned();
    config.k = Some(spec.normal_groups);
    let mut model = TargAd::try_new(config).expect("valid config");
    model.fit(&bundle.train, 42).expect("training succeeds");
    let scores = model.try_score_dataset(&bundle.test).expect("fitted");

    let mut deepsad = DeepSad::default();
    deepsad
        .fit(&TrainView::from_dataset(&bundle.train), 42)
        .expect("baseline fit");
    let deepsad_scores = deepsad.score(&bundle.test.features);

    // The operational metric: of the K cases an analyst can verify today,
    // how many are actual high-risk merchants?
    for k in [10usize, 25, 50] {
        let p_targad = precision_at_k(&scores, &bundle.test, k);
        let p_deepsad = precision_at_k(&deepsad_scores, &bundle.test, k);
        println!(
            "precision@{k:>2}:  TargAD {:.0}%   DeepSAD {:.0}%",
            p_targad * 100.0,
            p_deepsad * 100.0
        );
    }

    let labels = bundle.test.target_labels();
    println!(
        "\noverall: TargAD AUPRC {:.3} vs DeepSAD AUPRC {:.3} (prevalence {:.4})",
        average_precision(&scores, &labels),
        average_precision(&deepsad_scores, &labels),
        labels.iter().filter(|&&l| l).count() as f64 / labels.len() as f64
    );

    // Peek at the head of TargAD's queue.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap());
    println!("\ntop of TargAD's queue:");
    for (rank, &i) in order.iter().take(8).enumerate() {
        let kind = match bundle.test.truth[i] {
            Truth::Target { class } => format!("HIGH-RISK (class {class})"),
            Truth::NonTarget { class } => format!("low-risk (class {class})"),
            Truth::Normal { .. } => "normal merchant".to_string(),
        };
        println!("  #{:<2} score {:.3} -> {kind}", rank + 1, scores[i]);
    }
}

fn precision_at_k(scores: &[f64], test: &targad::data::Dataset, k: usize) -> f64 {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap());
    let hits = order
        .iter()
        .take(k)
        .filter(|&&i| test.truth[i].is_target())
        .count();
    hits as f64 / k as f64
}
