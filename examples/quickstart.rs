//! Quickstart: generate a small benchmark, train TargAD, and evaluate its
//! target-anomaly ranking against an unsupervised baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use targad::baselines::{Detector, IForest, TrainView};
use targad::prelude::*;

fn main() {
    // A seeded benchmark: 2 hidden normal groups, 2 target anomaly classes
    // (what we care about), 2 non-target anomaly classes (noise we don't).
    let spec = GeneratorSpec::quick_demo();
    let bundle = spec.generate(7);
    println!(
        "train: {} instances ({} labeled target anomalies), test: {}",
        bundle.train.len(),
        bundle.train.summary().labeled_target,
        bundle.test.len()
    );

    // Fit TargAD. `fast()` is a small configuration for demos;
    // `TargAdConfig::paper()` mirrors §IV-C of the paper.
    let mut model = TargAd::try_new(TargAdConfig::fast()).expect("valid config");
    model.fit(&bundle.train, 7).expect("training succeeds");

    // Score the test set: S^tar(x) = max_{j<=m} p_j(x)  (Eq. 9).
    let scores = model.try_score_dataset(&bundle.test).expect("fitted");
    let labels = bundle.test.target_labels();
    println!(
        "TargAD   target AUPRC {:.3}, AUROC {:.3}",
        average_precision(&scores, &labels),
        auroc(&scores, &labels)
    );

    // Compare with isolation forest, which cannot tell target anomalies
    // from non-target ones.
    let mut forest = IForest::default();
    forest
        .fit(&TrainView::from_dataset(&bundle.train), 7)
        .expect("baseline fit");
    let forest_scores = forest.score(&bundle.test.features);
    println!(
        "iForest  target AUPRC {:.3}, AUROC {:.3}",
        average_precision(&forest_scores, &labels),
        auroc(&forest_scores, &labels)
    );

    // Where does the difference come from? iForest also ranks *non-target*
    // anomalies high — false positives for the analyst.
    let anomaly_labels = bundle.test.anomaly_labels();
    println!(
        "iForest  any-anomaly AUROC {:.3}  (it detects anomalies fine — just not the right ones)",
        auroc(&forest_scores, &anomaly_labels)
    );
}
