//! Three-way triage (§III-C and Table IV): separate the stream into
//! normal traffic, high-risk (target) anomalies, and low-risk (non-target)
//! anomalies, comparing the MSP / ES / ED out-of-distribution strategies
//! through the verdict-first API.
//!
//! Run with: `cargo run --release --example threeway_triage`

use targad::metrics::ConfusionMatrix;
use targad::prelude::*;

fn main() {
    let spec = Preset::UnswNb15.spec(0.02);
    let bundle = spec.generate(5);

    let mut config = TargAdConfig::default_tuned();
    config.k = Some(spec.normal_groups);
    let mut model = TargAd::try_new(config).expect("valid config");
    model.fit(&bundle.train, 5).expect("training succeeds");

    // One calibration pass stores a threshold per OOD strategy on the
    // model; every verdict afterwards reuses the cached taus.
    model
        .calibrate_thresholds(&bundle.val.features, &bundle.val.three_way_labels())
        .expect("calibration succeeds");

    let test_truth = bundle.test.three_way_labels();
    let names = ["normal", "target", "non-target"];

    for strategy in OodStrategy::all() {
        let tau = model.thresholds().get(strategy).expect("calibrated");
        let verdicts = model
            .try_verdict_matrix(&bundle.test.features, strategy)
            .expect("fitted and calibrated");
        let cm = ConfusionMatrix::from_predictions(&test_truth, &verdicts.three_way_codes(), 3);

        println!("=== {} (threshold {tau:.3}) ===", strategy.name());
        println!(
            "accuracy {:.3}, macro-F1 {:.3}",
            cm.accuracy(),
            cm.macro_avg().f1
        );
        for (c, name) in names.iter().enumerate() {
            let r = cm.class_report(c);
            println!(
                "  {name:<11} precision {:.3}  recall {:.3}  f1 {:.3}  (n = {})",
                r.precision, r.recall, r.f1, r.support
            );
        }
        println!();
    }

    println!(
        "Counts routed to each queue (ED strategy):\n\
         triage decision = normal if sum of the last k probabilities > k/(m+k),\n\
         otherwise target vs non-target by the OOD score."
    );
    let verdicts = model
        .try_verdict_matrix(&bundle.test.features, OodStrategy::EnergyDiscrepancy)
        .expect("fitted and calibrated");
    for (code, name) in names.iter().enumerate() {
        let n = verdicts.iter().filter(|v| v.class.code() == code).count();
        println!("  {name:<11} {n}");
    }
}
