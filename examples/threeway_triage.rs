//! Three-way triage (§III-C and Table IV): separate the stream into
//! normal traffic, high-risk (target) anomalies, and low-risk (non-target)
//! anomalies, comparing the MSP / ES / ED out-of-distribution strategies.
//!
//! Run with: `cargo run --release --example threeway_triage`

use targad::core::ood::{calibrate_threshold, classify_three_way};
use targad::metrics::ConfusionMatrix;
use targad::prelude::*;

fn main() {
    let spec = Preset::UnswNb15.spec(0.02);
    let bundle = spec.generate(5);

    let mut config = TargAdConfig::default_tuned();
    config.k = Some(spec.normal_groups);
    let mut model = TargAd::try_new(config).expect("valid config");
    model.fit(&bundle.train, 5).expect("training succeeds");
    let clf = model.classifier().expect("fitted");

    let val_truth = bundle.val.three_way_labels();
    let test_truth = bundle.test.three_way_labels();
    let names = ["normal", "target", "non-target"];

    for strategy in OodStrategy::all() {
        // Calibrate the target/non-target threshold on validation data,
        // then triage the test stream.
        let tau = calibrate_threshold(clf, &bundle.val.features, &val_truth, strategy);
        let pred = classify_three_way(clf, &bundle.test.features, strategy, tau);
        let cm = ConfusionMatrix::from_predictions(&test_truth, &pred, 3);

        println!("=== {} (threshold {tau:.3}) ===", strategy.name());
        println!(
            "accuracy {:.3}, macro-F1 {:.3}",
            cm.accuracy(),
            cm.macro_avg().f1
        );
        for (c, name) in names.iter().enumerate() {
            let r = cm.class_report(c);
            println!(
                "  {name:<11} precision {:.3}  recall {:.3}  f1 {:.3}  (n = {})",
                r.precision, r.recall, r.f1, r.support
            );
        }
        println!();
    }

    println!(
        "Counts routed to each queue (ED strategy):\n\
         triage decision = normal if sum of the last k probabilities > k/(m+k),\n\
         otherwise target vs non-target by the OOD score."
    );
    let tau = calibrate_threshold(
        clf,
        &bundle.val.features,
        &val_truth,
        OodStrategy::EnergyDiscrepancy,
    );
    let pred = classify_three_way(
        clf,
        &bundle.test.features,
        OodStrategy::EnergyDiscrepancy,
        tau,
    );
    for (code, name) in names.iter().enumerate() {
        let n = pred.iter().filter(|&&p| p == code).count();
        println!("  {name:<11} {n}");
    }
}
