//! # targad — target-class anomaly detection
//!
//! A from-scratch Rust reproduction of **TargAD** (ICDE 2024): *"A Robust
//! Prioritized Anomaly Detection when Not All Anomalies are of Primary
//! Interest"*. This facade crate re-exports the whole workspace and provides
//! a [`prelude`] for the common workflow:
//!
//! ```
//! use targad::prelude::*;
//!
//! // A small seeded benchmark with 2 target / 2 non-target anomaly classes.
//! let spec = GeneratorSpec::quick_demo();
//! let bundle = spec.generate(7);
//! let mut model = TargAd::try_new(TargAdConfig::fast()).expect("valid config");
//! model.fit(&bundle.train, 7).expect("training succeeds");
//! let scores = model
//!     .try_score_matrix(&bundle.test.features)
//!     .expect("model is fitted");
//! let auprc = average_precision(&scores, &bundle.test.target_labels());
//! assert!(auprc > 0.0);
//! ```

pub use targad_autograd as autograd;
pub use targad_baselines as baselines;
pub use targad_cluster as cluster;
pub use targad_core as core;
pub use targad_data as data;
pub use targad_linalg as linalg;
pub use targad_metrics as metrics;
pub use targad_nn as nn;
pub use targad_serve as serve;

/// The common import surface for examples, tests, and downstream users.
pub mod prelude {
    pub use targad_baselines::{Detector, TrainView};
    pub use targad_core::{
        Calibration, OodStrategy, Runtime, ScoreOutput, TargAd, TargAdConfig, ThresholdCache,
        Verdict, VerdictClass,
    };
    pub use targad_data::{Dataset, DatasetBundle, GeneratorSpec, Preset, SplitCounts, Truth};
    pub use targad_linalg::Matrix;
    pub use targad_metrics::{auroc, average_precision};
    pub use targad_serve::{ModelSnapshot, ServeConfig, Server};
}
