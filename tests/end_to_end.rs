//! Cross-crate integration tests: the full TargAD pipeline (data →
//! clustering → autoencoders → classifier → metrics) against the paper's
//! headline claims.

use targad::baselines::{Detector, IForest, TrainView};
use targad::prelude::*;

fn fitted(seed: u64) -> (TargAd, DatasetBundle) {
    let bundle = GeneratorSpec::quick_demo().generate(seed);
    let mut model = TargAd::try_new(TargAdConfig::fast()).expect("valid config");
    model.fit(&bundle.train, seed).expect("fit succeeds");
    (model, bundle)
}

#[test]
fn targad_beats_unsupervised_baseline_on_target_auprc() {
    let (model, bundle) = fitted(7);
    let labels = bundle.test.target_labels();
    let targad_ap = average_precision(
        &model.try_score_dataset(&bundle.test).expect("fitted"),
        &labels,
    );

    let mut forest = IForest::default();
    forest
        .fit(&TrainView::from_dataset(&bundle.train), 7)
        .expect("baseline fit");
    let forest_ap = average_precision(&forest.score(&bundle.test.features), &labels);

    assert!(
        targad_ap > forest_ap + 0.2,
        "TargAD {targad_ap:.3} should clearly beat iForest {forest_ap:.3}"
    );
}

#[test]
fn targad_suppresses_non_target_anomalies() {
    // Core claim: among anomalies, target ones outrank non-target ones.
    let (model, bundle) = fitted(8);
    let scores = model.try_score_dataset(&bundle.test).expect("fitted");
    let three = bundle.test.three_way_labels();
    let mean = |code: usize| {
        let v: Vec<f64> = scores
            .iter()
            .zip(&three)
            .filter(|(_, &t)| t == code)
            .map(|(&s, _)| s)
            .collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    let (normal, target, non_target) = (mean(0), mean(1), mean(2));
    assert!(
        target > non_target + 0.05,
        "target mean {target:.3} vs non-target mean {non_target:.3}"
    );
    assert!(
        target > normal,
        "target mean {target:.3} vs normal mean {normal:.3}"
    );
}

#[test]
fn robust_to_novel_non_target_types() {
    // Fig. 4a in miniature: hold out one non-target class from training.
    let mut spec = GeneratorSpec::quick_demo();
    spec.train_non_target_classes = Some(vec![0]); // class 1 is novel
    let bundle = spec.generate(9);
    let mut model = TargAd::try_new(TargAdConfig::fast()).expect("valid config");
    model.fit(&bundle.train, 9).expect("fit succeeds");
    let labels = bundle.test.target_labels();
    let ap = average_precision(
        &model.try_score_dataset(&bundle.test).expect("fitted"),
        &labels,
    );
    let prevalence = labels.iter().filter(|&&l| l).count() as f64 / labels.len() as f64;
    assert!(
        ap > 5.0 * prevalence,
        "AP {ap:.3} vs prevalence {prevalence:.3}"
    );
}

#[test]
fn pipeline_is_deterministic() {
    let (a, bundle) = fitted(10);
    let (b, _) = fitted(10);
    assert_eq!(
        a.try_score_dataset(&bundle.test).expect("fitted"),
        b.try_score_dataset(&bundle.test).expect("fitted")
    );
}

#[test]
fn validation_performance_transfers_to_test() {
    // Val and test are drawn from the same geometry, so a model good on
    // one must be good on the other (guards against split leakage bugs).
    let (model, bundle) = fitted(11);
    let val_ap = average_precision(
        &model.try_score_dataset(&bundle.val).expect("fitted"),
        &bundle.val.target_labels(),
    );
    let test_ap = average_precision(
        &model.try_score_dataset(&bundle.test).expect("fitted"),
        &bundle.test.target_labels(),
    );
    assert!(
        (val_ap - test_ap).abs() < 0.3,
        "val {val_ap:.3} vs test {test_ap:.3}"
    );
    assert!(val_ap > 0.5 && test_ap > 0.5);
}

#[test]
fn history_supports_figure_reproduction() {
    let (model, _) = fitted(12);
    let h = model.history();
    // Fig. 3a needs the loss curve, Fig. 5 the weight telemetry.
    assert_eq!(h.clf_loss.len(), model.config().clf_epochs);
    assert_eq!(h.weight_means.len(), model.config().clf_epochs);
    assert!(!h.final_weights.is_empty());
    assert!(h.clf_loss.iter().all(|l| l.is_finite()));
}
