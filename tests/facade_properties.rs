//! Property tests over the public facade: random benchmark specs must
//! produce structurally valid bundles and models with sane score ranges.

use proptest::prelude::*;
use targad::prelude::*;

fn small_spec_strategy() -> impl Strategy<Value = GeneratorSpec> {
    (
        4usize..16,    // dims
        1usize..3,     // normal groups
        1usize..3,     // target classes
        0usize..3,     // non-target classes
        0.02f64..0.12, // contamination
    )
        .prop_map(|(dims, groups, targets, non_targets, contamination)| {
            let mut spec = GeneratorSpec::quick_demo();
            spec.dims = dims;
            spec.normal_groups = groups;
            spec.target_classes = targets;
            spec.non_target_classes = non_targets;
            spec.contamination = contamination;
            spec.train_unlabeled = 200;
            spec.labeled_per_class = 5;
            spec.val_counts = SplitCounts {
                normal: 40,
                target: 8,
                non_target: 4 * non_targets,
            };
            spec.test_counts = SplitCounts {
                normal: 60,
                target: 10,
                non_target: 5 * non_targets,
            };
            spec
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every random spec yields consistent splits in [0,1]^D.
    #[test]
    fn random_specs_generate_valid_bundles(spec in small_spec_strategy(), seed in 0u64..1000) {
        let bundle = spec.generate(seed);
        for split in [&bundle.train, &bundle.val, &bundle.test] {
            prop_assert_eq!(split.dims(), spec.dims);
            prop_assert!(split.features.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
            prop_assert_eq!(split.truth.len(), split.len());
        }
        prop_assert_eq!(bundle.train.summary().labeled_target, spec.labeled_total());
    }

    /// TargAD scores are always valid probabilities on any spec it accepts.
    #[test]
    fn scores_are_probabilities(spec in small_spec_strategy(), seed in 0u64..100) {
        let bundle = spec.generate(seed);
        let mut cfg = TargAdConfig::fast();
        cfg.ae_epochs = 3;
        cfg.clf_epochs = 4;
        cfg.k = Some(spec.normal_groups);
        let mut model = TargAd::try_new(cfg).expect("valid config");
        model.fit(&bundle.train, seed).expect("fit");
        let scores = model.try_score_dataset(&bundle.test).expect("fitted");
        prop_assert!(scores.iter().all(|&s| s.is_finite() && (0.0..=1.0).contains(&s)));
    }
}
