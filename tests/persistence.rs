//! Dataset persistence integration: CSV round-trips must preserve the
//! training outcome exactly.

use targad::data::csvio;
use targad::prelude::*;

#[test]
fn csv_round_trip_preserves_training_outcome() {
    let bundle = GeneratorSpec::quick_demo().generate(31);
    let dir = std::env::temp_dir().join("targad_persistence_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("train.csv");
    csvio::save_csv(&bundle.train, &path).expect("save");
    let reloaded = csvio::load_csv(&path).expect("load");

    let mut fast = TargAdConfig::fast();
    fast.clf_epochs = 10;
    fast.ae_epochs = 5;

    let mut original = TargAd::try_new(fast.clone()).expect("valid config");
    original.fit(&bundle.train, 1).expect("fit original");
    let mut roundtrip = TargAd::try_new(fast).expect("valid config");
    roundtrip.fit(&reloaded, 1).expect("fit reloaded");

    let a = original.try_score_dataset(&bundle.test).expect("fitted");
    let b = roundtrip.try_score_dataset(&bundle.test).expect("fitted");
    for (x, y) in a.iter().zip(&b) {
        assert!((x - y).abs() < 1e-9, "scores diverged after CSV round trip");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn all_splits_serialize() {
    let bundle = GeneratorSpec::quick_demo().generate(32);
    for (name, split) in [
        ("train", &bundle.train),
        ("val", &bundle.val),
        ("test", &bundle.test),
    ] {
        let text = csvio::to_csv_string(split);
        let back = csvio::from_csv_string(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(back.len(), split.len(), "{name}");
        assert_eq!(back.truth, split.truth, "{name}");
    }
}
