//! Integration tests of the §III-C three-way identification across the
//! core, data, and metrics crates, through the verdict-first API.

use targad::metrics::ConfusionMatrix;
use targad::prelude::*;

fn fitted() -> (TargAd, DatasetBundle) {
    let bundle = GeneratorSpec::quick_demo().generate(7);
    let mut model = TargAd::try_new(TargAdConfig::fast()).expect("valid config");
    model.fit(&bundle.train, 7).expect("fit succeeds");
    model
        .calibrate_thresholds(&bundle.val.features, &bundle.val.three_way_labels())
        .expect("calibration succeeds");
    (model, bundle)
}

#[test]
fn calibrated_thresholds_generalize_from_val_to_test() {
    let (model, bundle) = fitted();
    for strategy in OodStrategy::all() {
        let verdicts = model
            .try_verdict_matrix(&bundle.test.features, strategy)
            .expect("calibrated");
        let pred = verdicts.three_way_codes();
        let cm = ConfusionMatrix::from_predictions(&bundle.test.three_way_labels(), &pred, 3);
        assert!(
            cm.accuracy() > 0.6,
            "{}: accuracy {:.3} too low",
            strategy.name(),
            cm.accuracy()
        );
        // The normal class must be solid — it dominates the stream.
        assert!(
            cm.class_report(0).recall > 0.8,
            "{}: normal recall",
            strategy.name()
        );
    }
}

#[test]
fn three_way_predictions_partition_the_stream() {
    let (model, bundle) = fitted();
    let verdicts = model
        .try_verdict_matrix(&bundle.test.features, OodStrategy::Msp)
        .expect("calibrated");
    assert_eq!(verdicts.len(), bundle.test.len());
    let pred = verdicts.three_way_codes();
    let counts: Vec<usize> = (0..3)
        .map(|c| pred.iter().filter(|&&p| p == c).count())
        .collect();
    assert_eq!(counts.iter().sum::<usize>(), bundle.test.len());
    // All three routes should be used on a mixed stream.
    assert!(counts[0] > 0 && counts[1] > 0, "{counts:?}");
}

#[test]
fn fused_verdicts_match_the_reference_path_bitwise() {
    // The serving/batch path (fused ScoreEngine inference) and the plain
    // reference path (full logits matrix, per-row softmax) must agree to
    // the last bit — scores, classes, and the Eq. 9 scalar score path.
    let (model, bundle) = fitted();
    let clf = model.classifier().expect("fitted");
    for strategy in OodStrategy::all() {
        let tau = model.thresholds().get(strategy).expect("calibrated");
        let fused = model
            .try_verdict_matrix(&bundle.test.features, strategy)
            .expect("fused path");
        let reference = clf.verdicts(&bundle.test.features, strategy, tau);
        assert_eq!(fused.len(), reference.len());
        for i in 0..fused.len() {
            let (f, r) = (fused.verdict(i), reference.verdict(i));
            assert_eq!(
                f.score.to_bits(),
                r.score.to_bits(),
                "{} row {i}: fused vs reference score",
                strategy.name()
            );
            assert_eq!(f.class, r.class, "{} row {i}: class", strategy.name());
        }
        // The verdict scores are the same Eq. 9 scalars try_score_matrix
        // serves — the verdict API is a superset, not a fork.
        let scalars = model
            .try_score_matrix(&bundle.test.features)
            .expect("fitted");
        for (i, s) in scalars.iter().enumerate() {
            assert_eq!(
                s.to_bits(),
                fused.verdict(i).score.to_bits(),
                "{} row {i}: scalar vs verdict score",
                strategy.name()
            );
        }
    }
}

#[test]
fn verdicts_without_calibration_fail_with_a_typed_error() {
    let bundle = GeneratorSpec::quick_demo().generate(7);
    let mut model = TargAd::try_new(TargAdConfig::fast()).expect("valid config");
    model.fit(&bundle.train, 7).expect("fit succeeds");
    let err = model
        .try_verdict_matrix(&bundle.test.features, OodStrategy::Msp)
        .expect_err("no thresholds calibrated");
    assert!(
        err.to_string().contains("calibrate_thresholds"),
        "error should point at the fix: {err}"
    );
}

#[test]
fn ood_scores_separate_target_from_non_target_anomalies() {
    // The OOD target-likeness score is only ever consulted *after* the
    // §III-C normality gate (rows whose normal-probability mass is low),
    // so measure separation exactly there — raw logit peakedness (ED) is
    // meaningless for rows the gate already routed to "normal".
    let (model, bundle) = fitted();
    let clf = model.classifier().unwrap();
    let logits = clf.logits(&bundle.test.features);
    let probs = logits.softmax_rows();
    let three = bundle.test.three_way_labels();
    let gated: Vec<usize> = (0..bundle.test.len())
        .filter(|&i| !clf.is_normal_row(probs.row(i)))
        .collect();
    // The strategies are alternatives (Table IV compares them; the paper
    // finds ED best). Require that at least one of them separates target
    // from non-target anomalies among the gated rows, and that all of them
    // produce finite scores.
    let mut any_separates = false;
    for strategy in OodStrategy::all() {
        let scores_of = |code: usize| -> Vec<f64> {
            gated
                .iter()
                .filter(|&&i| three[i] == code)
                .map(|&i| strategy.target_score(logits.row(i), clf.m()))
                .collect()
        };
        let targets = scores_of(1);
        let non_targets = scores_of(2);
        assert!(!targets.is_empty(), "no target anomalies passed the gate");
        assert!(targets.iter().chain(&non_targets).all(|s| s.is_finite()));
        if non_targets.is_empty() {
            // All non-targets were absorbed by the normality gate on this
            // seed; the OOD split has nothing left to separate.
            any_separates = true;
            continue;
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        if mean(&targets) > mean(&non_targets) {
            any_separates = true;
        }
    }
    assert!(
        any_separates,
        "no OOD strategy separates target from non-target anomalies"
    );
}
