//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the macro and method surface the workspace's benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion::bench_function`],
//! benchmark groups with [`BenchmarkGroup::bench_with_input`] /
//! [`BenchmarkGroup::sample_size`], [`BenchmarkId`], and [`black_box`] —
//! backed by a simple wall-clock sampler: warm up, then take `sample_size`
//! timed samples of an adaptively chosen iteration batch, and report the
//! per-iteration mean / min / max of the samples.
//!
//! It produces no plots and no statistical analysis; it exists so
//! `cargo bench` runs and prints comparable per-iteration timings.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one parameterized benchmark (`group/function/param`).
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered as `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher<'_> {
    /// Times `routine`, storing per-iteration samples.
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        // Warm-up and batch-size calibration: find how many iterations fit
        // in ~1/20 of the measurement budget.
        let calib_start = Instant::now();
        let mut calib_iters = 0u64;
        while calib_start.elapsed() < self.measurement_time / 20 || calib_iters == 0 {
            black_box(routine());
            calib_iters += 1;
        }
        let per_iter = calib_start.elapsed() / calib_iters.max(1) as u32;
        let budget = self.measurement_time / self.sample_size.max(1) as u32;
        let batch = (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 20) as u64;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }
}

#[derive(Clone, Copy)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_millis(600),
        }
    }
}

/// The benchmark driver (a minimal stand-in for criterion's).
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
    /// `(name, mean seconds per iteration)` for every run benchmark.
    results: Vec<(String, f64)>,
}

fn run_one(name: &str, settings: Settings, f: &mut dyn FnMut(&mut Bencher)) -> f64 {
    let mut samples = Vec::new();
    let mut bencher = Bencher {
        samples: &mut samples,
        sample_size: settings.sample_size,
        measurement_time: settings.measurement_time,
    };
    f(&mut bencher);
    let secs: Vec<f64> = samples.iter().map(Duration::as_secs_f64).collect();
    if secs.is_empty() {
        println!("{name:<48} (no samples)");
        return 0.0;
    }
    let mean = secs.iter().sum::<f64>() / secs.len() as f64;
    let min = secs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = secs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "{name:<48} time: [{} {} {}]",
        format_time(min),
        format_time(mean),
        format_time(max)
    );
    mean
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.3} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.3} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mean = run_one(name, self.settings, &mut f);
        self.results.push((name.to_string(), mean));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let settings = self.settings;
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            settings,
        }
    }

    /// Mean seconds-per-iteration of every benchmark run so far, in order.
    pub fn results(&self) -> &[(String, f64)] {
        &self.results
    }
}

/// A group of related benchmarks sharing settings and a name prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.settings.measurement_time = t;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(
        &mut self,
        name: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let mean = run_one(&full, self.settings, &mut f);
        self.parent.results.push((full, mean));
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let mean = run_one(&full, self.settings, &mut |b| f(b, input));
        self.parent.results.push((full, mean));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Bundles benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_positive_mean() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(20));
        group.bench_function("spin", |b| b.iter(|| (0..100).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
        assert_eq!(c.results().len(), 2);
        assert!(c.results().iter().all(|(_, mean)| *mean > 0.0));
        assert!(c.results()[1].0.contains("param/4"));
    }
}
