//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the subset of proptest the workspace's property tests use:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map` / `prop_flat_map` /
//! `boxed`, range and tuple strategies, [`Just`], [`any`],
//! `prop::collection::vec`, [`prop_oneof!`], and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from upstream, chosen deliberately for this workspace:
//! - **No shrinking.** A failing case reports its inputs (via the panic
//!   message) but is not minimized.
//! - **Deterministic seeding.** Case `i` of test `t` always draws from the
//!   same seed (a hash of the fully qualified test name and `i`), so runs
//!   are bit-reproducible — matching the repo-wide reproducibility policy.
//! - Rejected cases (`prop_assume!`) are skipped rather than re-drawn.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Per-test configuration (`ProptestConfig` in upstream proptest).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case violated a `prop_assert*!`.
    Fail(String),
    /// The case was filtered out by `prop_assume!`.
    Reject(String),
}

/// Deterministic RNG for case `case` of the named test.
pub fn new_case_rng(test_name: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1)))
}

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each produced value and draws from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among same-valued strategies (backs [`prop_oneof!`]).
pub struct Union<S> {
    options: Vec<S>,
}

impl<S: Strategy> Union<S> {
    /// A union over `options`.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn new(options: Vec<S>) -> Self {
        assert!(!options.is_empty(), "Union::new: need at least one option");
        Self { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        let i = rng.random_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical full-range strategy backing [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_via {
    ($t:ty, $sample:expr) => {
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let f: fn(&mut TestRng) -> $t = $sample;
                f(rng)
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy(std::marker::PhantomData)
            }
        }
    };
}

impl_arbitrary_via!(bool, |rng| rng.random::<bool>());
impl_arbitrary_via!(u64, |rng| rng.random::<u64>());
impl_arbitrary_via!(u32, |rng| rng.random::<u32>());
impl_arbitrary_via!(usize, |rng| rng.random::<usize>());
impl_arbitrary_via!(f64, |rng| {
    // Finite, sign-balanced, wide dynamic range.
    rng.random::<f64>() * 2e6 - 1e6
});

/// `any::<T>()`: the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies (`prop::collection` in upstream proptest).
pub mod prop {
    /// Vector strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// Length specifications accepted by [`vec`].
        pub trait IntoSizeRange {
            /// `(min, max)` inclusive bounds.
            fn bounds(&self) -> (usize, usize);
        }

        impl IntoSizeRange for usize {
            fn bounds(&self) -> (usize, usize) {
                (*self, *self)
            }
        }

        impl IntoSizeRange for std::ops::Range<usize> {
            fn bounds(&self) -> (usize, usize) {
                assert!(self.start < self.end, "vec: empty length range");
                (self.start, self.end - 1)
            }
        }

        impl IntoSizeRange for std::ops::RangeInclusive<usize> {
            fn bounds(&self) -> (usize, usize) {
                (*self.start(), *self.end())
            }
        }

        /// Strategy producing `Vec`s of `elem` draws.
        pub struct VecStrategy<S> {
            elem: S,
            min: usize,
            max: usize,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let len = if self.min == self.max {
                    self.min
                } else {
                    rng.random_range(self.min..=self.max)
                };
                (0..len).map(|_| self.elem.sample(rng)).collect()
            }
        }

        /// A strategy for vectors whose elements come from `elem` and whose
        /// length lies in `len`.
        pub fn vec<S: Strategy>(elem: S, len: impl IntoSizeRange) -> VecStrategy<S> {
            let (min, max) = len.bounds();
            VecStrategy { elem, min, max }
        }
    }
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$attr:meta])*
        fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::new_case_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("property {} failed at case {case}: {msg}", stringify!($name));
                    }
                }
            }
        }
    )*};
}

/// Asserts within a property body, failing the case (not panicking inline).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert!(a == b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// `prop_assert!(a != b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)+);
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The common import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_across_runs() {
        let s = prop::collection::vec(0.0f64..1.0, 3);
        let mut a = crate::new_case_rng("t", 0);
        let mut b = crate::new_case_rng("t", 0);
        assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(0u64..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5, "len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuples_and_maps((a, b) in (0usize..5, 0.0f64..1.0).prop_map(|(x, y)| (x * 2, y))) {
            prop_assert!(a % 2 == 0);
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert_ne!(a, 11);
        }

        #[test]
        fn oneof_and_assume(v in prop_oneof![Just(1u64), Just(2u64)], w in any::<bool>()) {
            prop_assume!(v != 2 || w);
            prop_assert!(v == 1 || w);
        }
    }
}
