//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the API surface the workspace uses: [`Rng`] /
//! [`RngExt`] with `random`, `random_range`, and `random_bool`,
//! [`SeedableRng::seed_from_u64`], and a deterministic [`rngs::StdRng`].
//!
//! [`rngs::StdRng`] is xoshiro256** seeded through SplitMix64 — a
//! well-studied, fully deterministic generator with 256 bits of state.
//! It does **not** reproduce the upstream `rand` byte stream; every
//! stochastic result in this workspace is defined relative to this
//! generator.

use std::ops::{Range, RangeInclusive};

/// A source of random `u64` words plus the derived sampling helpers.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw of type `T` (`f64` in `[0, 1)`, full-range integers,
    /// fair `bool`).
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform draw from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics on an empty range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub use Rng as RngExt;

/// Types that can be drawn uniformly from an [`Rng`].
pub trait StandardUniform: Sized {
    /// One uniform draw.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl StandardUniform for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardUniform for usize {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardUniform for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value of type `T` can be drawn uniformly from.
pub trait SampleRange<T> {
    /// One uniform draw from `self`.
    fn sample_single<R: Rng>(self, rng: &mut R) -> T;
}

/// Unbiased integer draw from `[0, span)` via Lemire-style rejection.
fn uniform_below<R: Rng>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection zone keeps the draw exactly uniform.
    let zone = span.wrapping_neg() % span;
    loop {
        let v = rng.next_u64();
        if v >= zone {
            return v % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "random_range: empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + rng.next_u64() as $t;
                }
                start + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64 + uniform_below(rng, span) as i64) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "random_range: empty range");
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i64 + uniform_below(rng, span + 1) as i64) as $t
            }
        }
    )*};
}

impl_signed_range!(i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "random_range: empty range");
        let v = self.start + f64::sample(rng) * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: Rng>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "random_range: empty range");
        start + f64::sample(rng) * (end - start)
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a `u64` seed; equal seeds give equal
    /// streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded via SplitMix64.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
            // xoshiro256** is ill-defined on the all-zero state; SplitMix64
            // cannot produce four zero words from one pass, but keep the
            // guard explicit.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_draws_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn integer_ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.random_range(3usize..=4);
            assert!(v == 3 || v == 4);
        }
    }

    #[test]
    fn f64_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.random_range(-2.5f64..1.5);
            assert!((-2.5..1.5).contains(&v));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "{frac}");
    }
}
